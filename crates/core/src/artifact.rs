//! Versioned model artifacts: a fitted model as a file.
//!
//! A [`ModelArtifact`] wraps a [`FittedModel`] in a small envelope —
//! schema version, model-kind name, config hash, provenance — and
//! round-trips through JSON such that the reloaded model **replays
//! byte-identically** to the in-memory original (test-enforced per
//! [`ModelKind`] in `tests/artifacts.rs`). The same serialized form is
//! what the fit cache ([`crate::cache`]) stores, so a cache hit is
//! guaranteed to behave exactly like a saved-then-loaded artifact.
//!
//! Loading returns a typed [`ArtifactError`] carrying the offending file
//! path (and, on version skew, both schema versions) instead of
//! panicking on malformed input — `ibox replay nonsense.json` must fail
//! with a sentence, not a backtrace.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use ibox_runner::ModelKind;
use ibox_sim::PathSpec;

use crate::iboxnet::IBoxNet;
use crate::model::{FittedModel, PathModel};

/// Artifact envelope schema version. Bump on any breaking change to the
/// envelope *or* to the serialized form of a fitted model; loaders reject
/// any other version by name rather than misinterpreting the payload.
///
/// History: v1 had no `path` field (the model always replayed its fitted
/// single-bottleneck spec); v2 records the replay path as an explicit
/// [`PathSpec`] stage chain; v3 adds optional lineage fields (`parent`,
/// `trace_digest`, `fit_seq`) for registry versioning — absent in v1/v2
/// artifacts, which still load (see [`ModelArtifact::parse`]) with the
/// lineage fields defaulting to `None`/`0`.
pub const MODEL_ARTIFACT_SCHEMA: u32 = 3;

/// Filename suffix for registry-managed artifacts (`<id>.artifact.json`).
/// Distinct from the fit cache's bare `<id>.json` entries (which hold a
/// serialized [`FittedModel`], not an envelope), so both can share one
/// `--model-cache` directory without colliding.
pub const ARTIFACT_FILE_SUFFIX: &str = ".artifact.json";

/// Why an artifact failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The file could not be read at all.
    Io {
        /// Path that failed to read.
        path: PathBuf,
        /// The underlying I/O error, stringified.
        detail: String,
    },
    /// The file read but is not valid artifact JSON.
    Parse {
        /// Path holding the malformed document.
        path: PathBuf,
        /// The serde error, stringified.
        detail: String,
    },
    /// The envelope parsed but declares an unsupported schema version.
    SchemaMismatch {
        /// Path holding the incompatible artifact.
        path: PathBuf,
        /// Version the file declares.
        found: u64,
        /// Version this build supports.
        supported: u32,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io { path, detail } => {
                write!(f, "cannot read model artifact {}: {detail}", path.display())
            }
            ArtifactError::Parse { path, detail } => {
                write!(f, "malformed model artifact {}: {detail}", path.display())
            }
            ArtifactError::SchemaMismatch { path, found, supported } => write!(
                f,
                "model artifact {} has schema version {found}, but this build supports \
                 version {supported} — refit the model or use a matching ibox version",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Minimal probe of the envelope, parsed before the full payload so
/// version skew is reported as such (a v2 artifact should say "schema
/// version 2", not "unknown field").
#[derive(Deserialize)]
struct EnvelopeProbe {
    schema: Option<u64>,
}

/// A fitted model with its envelope: what `ibox fit -o` writes and
/// `ibox replay` loads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Envelope schema version ([`MODEL_ARTIFACT_SCHEMA`]).
    pub schema: u32,
    /// Display name of the [`ModelKind`] that produced the model.
    pub kind: String,
    /// `ibox_obs::config_hash` of the producing [`ModelKind`] — ties the
    /// artifact to its exact fit configuration (and doubles as the config
    /// component of the fit-cache key).
    pub config_hash: String,
    /// Name of the trace/path the model was fitted on.
    pub fitted_on: String,
    /// The fitted model itself.
    pub model: FittedModel,
    /// The replay path as an explicit stage chain (schema ≥ 2). Fresh
    /// fits record the model's own 1-stage spec; editing this field (or
    /// fitting with a composed-path option) replays the same fitted model
    /// through a different chain. Upgraded v1 artifacts get the model's
    /// 1-stage spec, which replays byte-identically to v1 behavior.
    pub path: Option<PathSpec>,
    /// Lineage (schema ≥ 3): registry id of the version this fit
    /// supersedes, e.g. `rtc-17-v2` for the third fit of an ingest
    /// session. `None` for one-shot fits and pre-v3 artifacts.
    pub parent: Option<String>,
    /// Lineage (schema ≥ 3): [`ibox_trace::FlowTrace::digest`] of the
    /// exact training trace, so replicas can verify they replay the same
    /// fit. `None` for pre-v3 artifacts.
    pub trace_digest: Option<String>,
    /// Lineage (schema ≥ 3): 1-based fit counter within a versioned
    /// lineage. `None` (treated as unversioned) for one-shot fits.
    pub fit_seq: Option<u64>,
}

impl ModelArtifact {
    /// Wrap a freshly fitted model in the current envelope.
    pub fn new(kind: &ModelKind, model: FittedModel) -> Self {
        let path = Some(model.path_spec());
        Self {
            schema: MODEL_ARTIFACT_SCHEMA,
            kind: kind.name().to_string(),
            config_hash: ibox_obs::config_hash(kind),
            fitted_on: model.fitted_on().to_string(),
            model,
            path,
            parent: None,
            trace_digest: None,
            fit_seq: None,
        }
    }

    /// Attach lineage metadata (builder-style): the version id this fit
    /// supersedes, the training-trace digest, and the fit counter.
    pub fn with_lineage(
        mut self,
        parent: Option<String>,
        trace_digest: String,
        fit_seq: u64,
    ) -> Self {
        self.parent = parent;
        self.trace_digest = Some(trace_digest);
        self.fit_seq = Some(fit_seq);
        self
    }

    /// Serialize to JSON (stable field order — byte-reproducible).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serialization cannot fail")
    }

    /// Parse an artifact, attributing failures to `origin`.
    pub fn parse(json: &str, origin: &Path) -> Result<Self, ArtifactError> {
        let probe: EnvelopeProbe = serde_json::from_str(json).map_err(|e| {
            ArtifactError::Parse { path: origin.to_path_buf(), detail: e.to_string() }
        })?;
        match probe.schema {
            None => Err(ArtifactError::Parse {
                path: origin.to_path_buf(),
                detail: "missing \"schema\" field — not a model artifact".into(),
            }),
            Some(v @ 1..=3) => {
                let mut artifact: Self = serde_json::from_str(json).map_err(|e| {
                    ArtifactError::Parse { path: origin.to_path_buf(), detail: e.to_string() }
                })?;
                if v == 1 {
                    // v1 predates path composition: upgrade in memory to
                    // an explicit 1-stage chain, which replays
                    // byte-identically to the v1 behavior.
                    artifact.schema = MODEL_ARTIFACT_SCHEMA;
                    artifact.path = Some(artifact.model.path_spec());
                }
                Ok(artifact)
            }
            Some(v) => Err(ArtifactError::SchemaMismatch {
                path: origin.to_path_buf(),
                found: v,
                supported: MODEL_ARTIFACT_SCHEMA,
            }),
        }
    }

    /// Load an artifact from disk.
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArtifactError::Io { path: path.to_path_buf(), detail: e.to_string() })?;
        Self::parse(&text, path)
    }

    /// Load either a real artifact **or** a legacy bare iBoxNet profile
    /// (the pre-envelope output of `ibox fit`, a serialized [`IBoxNet`]
    /// with no `schema` field). Legacy profiles are wrapped on the fly so
    /// `ibox simulate` and batch `ProfileFile` sources keep accepting
    /// files fitted by older builds.
    pub fn load_flexible(path: &Path) -> Result<Self, ArtifactError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArtifactError::Io { path: path.to_path_buf(), detail: e.to_string() })?;
        match Self::parse(&text, path) {
            Ok(artifact) => Ok(artifact),
            Err(err @ ArtifactError::SchemaMismatch { .. }) => Err(err),
            Err(err) => match IBoxNet::from_json(&text) {
                Ok(net) => Ok(Self {
                    schema: MODEL_ARTIFACT_SCHEMA,
                    kind: "iBoxNet".to_string(),
                    config_hash: ibox_obs::config_hash(&ModelKind::IBoxNet),
                    fitted_on: net.fitted_on.clone(),
                    path: Some(net.path_spec()),
                    model: FittedModel::IBoxNet(net),
                    parent: None,
                    trace_digest: None,
                    fit_seq: None,
                }),
                Err(_) => Err(err),
            },
        }
    }

    /// Path of the registry file for model `id` under `dir`
    /// (`<dir>/<id>.artifact.json`).
    pub fn registry_path(dir: &Path, id: &str) -> PathBuf {
        dir.join(format!("{id}{ARTIFACT_FILE_SUFFIX}"))
    }

    /// Save to disk as JSON.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        std::fs::write(path, self.to_json())
            .map_err(|e| ArtifactError::Io { path: path.to_path_buf(), detail: e.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_artifact() -> ModelArtifact {
        let train = ibox_testbed::run_protocol(
            &ibox_testbed::Profile::Ethernet
                .builder()
                .seed(2)
                .duration(ibox_sim::SimTime::from_secs(3))
                .sample(),
            "cubic",
            ibox_sim::SimTime::from_secs(3),
            2,
        );
        let kind = ModelKind::IBoxNet;
        ModelArtifact::new(&kind, crate::model::fit_model(&kind, &train))
    }

    #[test]
    fn envelope_roundtrips_and_is_byte_stable() {
        let artifact = sample_artifact();
        let json = artifact.to_json();
        let back = ModelArtifact::parse(&json, Path::new("mem")).unwrap();
        assert_eq!(back.schema, MODEL_ARTIFACT_SCHEMA);
        assert_eq!(back.kind, "iBoxNet");
        assert_eq!(back.config_hash, artifact.config_hash);
        assert_eq!(back.to_json(), json, "re-serialization must be byte-stable");
    }

    #[test]
    fn parse_failures_name_the_file() {
        let err = ModelArtifact::parse("{ not json", Path::new("/tmp/broken.json")).unwrap_err();
        assert!(matches!(err, ArtifactError::Parse { .. }));
        assert!(err.to_string().contains("/tmp/broken.json"), "{err}");

        let err = ModelArtifact::parse(r#"{"no_schema": 1}"#, Path::new("other.json")).unwrap_err();
        assert!(err.to_string().contains("not a model artifact"), "{err}");
    }

    #[test]
    fn schema_mismatch_names_both_versions() {
        let mut doc = sample_artifact().to_json();
        doc = doc.replacen(&format!("\"schema\":{MODEL_ARTIFACT_SCHEMA}"), "\"schema\":999", 1);
        let err = ModelArtifact::parse(&doc, Path::new("future.json")).unwrap_err();
        let ArtifactError::SchemaMismatch { found, supported, .. } = &err else {
            panic!("expected SchemaMismatch, got {err:?}");
        };
        assert_eq!(*found, 999);
        assert_eq!(*supported, MODEL_ARTIFACT_SCHEMA);
        let msg = err.to_string();
        assert!(
            msg.contains("future.json")
                && msg.contains("999")
                && msg.contains(&MODEL_ARTIFACT_SCHEMA.to_string()),
            "{msg}"
        );
    }

    /// v2 artifacts predate lineage: the fields must default to `None`
    /// rather than failing the parse, and fresh lineage must round-trip.
    #[test]
    fn lineage_defaults_and_roundtrips() {
        let artifact = sample_artifact();
        // Reconstruct a v2 document: schema 2, no lineage fields.
        let mut v = serde_json::parse_value(&artifact.to_json()).unwrap();
        if let serde::Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "parent" && k != "trace_digest" && k != "fit_seq");
            for (k, val) in fields.iter_mut() {
                if k == "schema" {
                    *val = serde::Value::U64(2);
                }
            }
        }
        let v2_json = serde_json::to_string(&v).unwrap();
        let loaded = ModelArtifact::parse(&v2_json, Path::new("v2.json")).unwrap();
        assert_eq!(loaded.parent, None);
        assert_eq!(loaded.trace_digest, None);
        assert_eq!(loaded.fit_seq, None);

        let lineaged = artifact.with_lineage(Some("m-v1".into()), "fnv1a:00".into(), 2);
        let back = ModelArtifact::parse(&lineaged.to_json(), Path::new("mem")).unwrap();
        assert_eq!(back.parent.as_deref(), Some("m-v1"));
        assert_eq!(back.trace_digest.as_deref(), Some("fnv1a:00"));
        assert_eq!(back.fit_seq, Some(2));
    }

    /// Satellite: a schema-1 artifact (no `path` field) loads as a 1-stage
    /// chain and replays byte-identically to its v2 form.
    #[test]
    fn schema_1_artifacts_upgrade_to_a_one_stage_chain() {
        let artifact = sample_artifact();
        // Reconstruct the exact v1 serialization: version 1, no `path`.
        let mut v = serde_json::parse_value(&artifact.to_json()).unwrap();
        if let serde::Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "path");
            for (k, val) in fields.iter_mut() {
                if k == "schema" {
                    *val = serde::Value::U64(1);
                }
            }
        }
        let v1_json = serde_json::to_string(&v).unwrap();
        let loaded = ModelArtifact::parse(&v1_json, Path::new("legacy.json")).unwrap();
        assert_eq!(loaded.schema, MODEL_ARTIFACT_SCHEMA);
        let spec = loaded.path.as_ref().expect("upgrade synthesizes a path");
        assert!(spec.is_single(), "v1 upgrades to a 1-stage chain");
        assert_eq!(*spec, loaded.model.path_spec());
        // And the replay is byte-identical to the v2 artifact's.
        let dur = ibox_sim::SimTime::from_secs(3);
        assert_eq!(
            loaded.model.simulate("vegas", dur, 7),
            artifact.model.simulate("vegas", dur, 7)
        );
    }

    #[test]
    fn load_flexible_accepts_legacy_bare_profiles() {
        let artifact = sample_artifact();
        let FittedModel::IBoxNet(net) = &artifact.model else { panic!("iboxnet expected") };
        let dir = std::env::temp_dir();
        let legacy = dir.join("ibox_artifact_test_legacy.json");
        std::fs::write(&legacy, net.to_json()).unwrap();
        let loaded = ModelArtifact::load_flexible(&legacy).unwrap();
        assert_eq!(loaded.kind, "iBoxNet");
        assert_eq!(loaded.fitted_on, net.fitted_on);
        let _ = std::fs::remove_file(&legacy);
    }
}
