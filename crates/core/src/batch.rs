//! Batch execution: typed [`RunSpec`]s from `ibox-runner`, executed here.
//!
//! The spec types live in the domain-light `ibox-runner` crate so every
//! layer can name them without cycles; this module supplies the execution
//! half — mapping a [`RunSource`] onto the testbed/trace/artifact loaders
//! and a [`ModelKind`](ibox_runner::ModelKind) onto fit+replay via the
//! [`PathModel`](crate::model::PathModel) split: fits go through the
//! content-addressed [`FitCache`], replays through the fitted model.
//!
//! Determinism contract: a batch's results depend only on the specs, never
//! on `jobs`. Runs execute on the runner pool with per-run scoped metric
//! registries folded back in spec order, cache lookups are single-flight
//! (hit/miss counters are jobs-invariant), and [`BatchResult::to_json`] is
//! byte-identical at any parallelism.

use serde::{Deserialize, Serialize};

use ibox_runner::{BatchSpec, RunSource, RunSpec};
use ibox_sim::SimTime;
use ibox_testbed::{run_protocol, Profile};
use ibox_trace::metrics::TraceMetrics;
use ibox_trace::{from_csv, FlowMeta, FlowTrace};

use crate::artifact::ModelArtifact;
use crate::cache::FitCache;
use crate::model::ReplayOpts;

/// Outcome of one [`RunSpec`]: identity plus the replay's summary metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The spec's `id`, or `run<index>` if the spec left it empty.
    pub id: String,
    /// Model display name ([`ModelKind::name`](ibox_runner::ModelKind::name)),
    /// or `"profile replay"` for [`RunSource::ProfileFile`] runs.
    pub model: String,
    /// Protocol replayed through the model.
    pub protocol: String,
    /// Replay duration, seconds.
    pub duration_s: f64,
    /// Replay seed.
    pub seed: u64,
    /// Summary metrics of the simulated trace.
    pub metrics: TraceMetrics,
}

/// All records of a batch, in spec order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchResult {
    /// One record per run, in the order the specs were given.
    pub records: Vec<RunRecord>,
}

impl BatchResult {
    /// Serialize to pretty JSON. Contains no wall-clock or parallelism
    /// information, so the bytes are identical at any `jobs` value.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("BatchResult serialization cannot fail")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("bad batch result: {e}"))
    }
}

/// Load a single-flow trace from `.json` or `.csv` (by extension).
fn load_trace(path: &str) -> Result<FlowTrace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let ext = std::path::Path::new(path).extension().and_then(|e| e.to_str()).unwrap_or("");
    match ext {
        "json" => serde_json::from_str(&text).map_err(|e| format!("bad JSON in {path}: {e}")),
        "csv" => {
            let meta = FlowMeta::new(path, "unknown", "imported");
            from_csv(&text, meta).map_err(|e| format!("bad CSV in {path}: {e}"))
        }
        other => Err(format!("unsupported trace extension {other:?} (use .json or .csv)")),
    }
}

/// Execute one spec: resolve the source, fit the model (unless the source
/// is an already-fitted artifact), replay the spec's protocol, and
/// summarize. Fits go through `cache`, so identical (trace, kind, config,
/// seed) specs in one batch fit once and replay many times.
///
/// Returns the record *and* the simulated trace so callers that need the
/// full trace (e.g. `ibox simulate -o`) don't replay twice; batch callers
/// drop the trace in the worker.
pub fn execute_run_cached(
    spec: &RunSpec,
    cache: &FitCache,
) -> Result<(RunRecord, FlowTrace), String> {
    if !spec.duration_s.is_finite() || spec.duration_s <= 0.0 {
        return Err(format!("duration must be positive, got {}", spec.duration_s));
    }
    if ibox_cc::by_name(&spec.protocol).is_none() {
        return Err(format!("unknown protocol {:?}", spec.protocol));
    }
    let duration = SimTime::from_secs_f64(spec.duration_s);
    // Parse the (optional) composed replay path once, up front: the spec
    // carries it as raw JSON so `ibox-runner` stays domain-light.
    let path = match &spec.path {
        Some(raw) => {
            let p = ibox_sim::PathSpec::from_value(raw)
                .map_err(|e| format!("bad path spec: {}", e.0))?;
            if p.is_empty() {
                return Err("path spec needs at least one stage".into());
            }
            Some(p)
        }
        None => None,
    };
    let opts = ReplayOpts { batch_streams: spec.batch_streams, fidelity: spec.fidelity, path };
    let (model_name, sim) = match &spec.source {
        RunSource::Synth { profile, protocol, seed } => {
            if ibox_cc::by_name(protocol).is_none() {
                return Err(format!("unknown training protocol {protocol:?}"));
            }
            let inst =
                Profile::from_name(profile)?.builder().seed(*seed).duration(duration).sample();
            let train = run_protocol(&inst, protocol, duration, *seed);
            let fitted = cache.fit_path_model(&spec.model, &train);
            (spec.model.name(), fitted.simulate_with(&spec.protocol, duration, spec.seed, opts))
        }
        RunSource::TraceFile { path } => {
            let train = load_trace(path)?;
            let fitted = cache.fit_path_model(&spec.model, &train);
            (spec.model.name(), fitted.simulate_with(&spec.protocol, duration, spec.seed, opts))
        }
        RunSource::ProfileFile { path } => {
            // Accepts both versioned model artifacts (any kind) and
            // legacy bare iBoxNet profiles. A multi-stage chain recorded
            // in the artifact applies unless the spec overrides it; a
            // recorded 1-stage chain is the model's own fitted path, so
            // skipping it keeps the replay byte-identical to pre-chain
            // builds.
            let artifact = ModelArtifact::load_flexible(std::path::Path::new(path))
                .map_err(|e| e.to_string())?;
            let opts = ReplayOpts {
                path: opts
                    .path
                    .clone()
                    .or_else(|| artifact.path.clone().filter(|spec| !spec.is_single())),
                ..opts
            };
            (
                "profile replay",
                artifact.model.simulate_with(&spec.protocol, duration, spec.seed, opts),
            )
        }
    };
    let record = RunRecord {
        id: spec.id.clone(),
        model: model_name.to_string(),
        protocol: spec.protocol.clone(),
        duration_s: spec.duration_s,
        seed: spec.seed,
        metrics: TraceMetrics::of(&sim),
    };
    Ok((record, sim))
}

/// [`execute_run_cached`] with a run-private cache — for one-shot callers
/// that have no batch to share fits across.
pub fn execute_run(spec: &RunSpec) -> Result<(RunRecord, FlowTrace), String> {
    execute_run_cached(spec, &FitCache::in_memory())
}

/// Run every spec in the batch on the runner pool at the batch's own
/// `jobs` setting. Fails on the first erroring run (reported with its
/// index); otherwise returns records in spec order.
pub fn run_batch(batch: &BatchSpec) -> Result<BatchResult, String> {
    run_batch_jobs(batch, batch.jobs)
}

/// [`run_batch`] with the parallelism overridden (`0` = all cores) — the
/// `--jobs` flag. Results are identical at any value. Fits share a
/// batch-wide in-memory cache.
pub fn run_batch_jobs(batch: &BatchSpec, jobs: usize) -> Result<BatchResult, String> {
    run_batch_with_cache(batch, jobs, &FitCache::in_memory())
}

/// [`run_batch_jobs`] against a caller-supplied [`FitCache`] — the CLI's
/// `--model-cache <dir>` passes a disk-backed cache here so fits persist
/// across invocations.
pub fn run_batch_with_cache(
    batch: &BatchSpec,
    jobs: usize,
    cache: &FitCache,
) -> Result<BatchResult, String> {
    let outcomes = ibox_runner::run_scoped_checked(batch.runs.len(), jobs, |i| {
        // The per-run span totals add up to the batch's serial wall time,
        // which is what the CLI divides by to report the actual speedup.
        let _span = ibox_obs::span!("batch.run");
        let _trace = ibox_obs::trace_span!("batch-run");
        execute_run_cached(&batch.runs[i], cache).map(|(record, _trace)| record)
    })
    .map_err(|e| e.to_string())?;
    let mut records = Vec::with_capacity(outcomes.len());
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let mut record = outcome.map_err(|e| format!("run {i}: {e}"))?;
        if record.id.is_empty() {
            record.id = format!("run{i}");
        }
        records.push(record);
    }
    Ok(BatchResult { records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibox_runner::ModelKind;

    fn small_batch() -> BatchSpec {
        let mut b = BatchSpec::builder().jobs(1);
        for (i, model) in [
            ModelKind::IBoxNet,
            ModelKind::StatisticalLoss,
            ModelKind::IBoxNetNoCross,
            ModelKind::IBoxNet,
        ]
        .into_iter()
        .enumerate()
        {
            b = b.run(
                RunSpec::builder()
                    .synth("ethernet", "cubic", 100 + i as u64)
                    .protocol(if i % 2 == 0 { "vegas" } else { "cubic" })
                    .duration_s(3.0)
                    .seed(7 + i as u64)
                    .model(model)
                    .build()
                    .unwrap(),
            );
        }
        b.build().unwrap()
    }

    /// The acceptance property: same batch, jobs 1 vs 4 ⇒ byte-identical
    /// results JSON and identical metric counters.
    #[test]
    fn results_and_counters_identical_at_any_jobs() {
        let batch = small_batch();

        let scope1 = ibox_obs::scoped();
        let r1 = run_batch_jobs(&batch, 1).unwrap();
        let m1 = scope1.finish().snapshot();

        let scope4 = ibox_obs::scoped();
        let r4 = run_batch_jobs(&batch, 4).unwrap();
        let m4 = scope4.finish().snapshot();

        assert_eq!(r1.to_json(), r4.to_json(), "results must not depend on jobs");
        assert_eq!(m1.counters, m4.counters, "folded metric counters must not depend on jobs");
        assert_eq!(m1.histograms, m4.histograms, "folded histograms must not depend on jobs");
    }

    /// Satellite: the causal span tree — IDs, parentage, event order —
    /// is identical at `--jobs 1` and `--jobs 4`, in the style of the
    /// byte-identity tests above. Only timestamps may differ.
    #[test]
    fn trace_span_trees_identical_at_any_jobs() {
        let batch = small_batch();
        let run = |jobs: usize| {
            let collector = ibox_obs::TraceCollector::new(1 << 14);
            let trace = 0x1bad_b002;
            {
                let _root =
                    ibox_obs::trace::start_root_in(collector.clone(), trace, "batch").unwrap();
                run_batch_jobs(&batch, jobs).unwrap();
            }
            let (_, events) = collector.get(trace).unwrap();
            events
                .iter()
                .map(|e| (e.lane, e.span, e.parent, e.phase.clone(), e.name.clone()))
                .collect::<Vec<_>>()
        };
        let t1 = run(1);
        let t4 = run(4);
        assert_eq!(t1, t4, "span trees must not depend on the jobs value");
        for phase in ["job-0", "job-3", "batch-run", "fit-cache", "model-fit", "model-replay"] {
            assert!(t1.iter().any(|e| e.4 == phase), "span tree is missing {phase:?}");
        }
    }

    #[test]
    fn records_are_labelled_in_spec_order() {
        let batch = small_batch();
        let result = run_batch(&batch).unwrap();
        assert_eq!(result.records.len(), 4);
        assert_eq!(result.records[0].id, "run0");
        assert_eq!(result.records[0].model, "iBoxNet");
        assert_eq!(result.records[1].model, "Statistical loss");
        assert!(result.records.iter().all(|r| r.metrics.avg_rate_mbps > 0.0));
        // And the result itself round-trips through JSON.
        let back = BatchResult::from_json(&result.to_json()).unwrap();
        assert_eq!(back, result);
    }

    #[test]
    fn bad_specs_are_reported_with_their_index() {
        let batch = BatchSpec::builder()
            .run(
                RunSpec::builder()
                    .synth("ethernet", "cubic", 1)
                    .protocol("nope")
                    .duration_s(2.0)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let err = run_batch(&batch).unwrap_err();
        assert!(err.contains("run 0"), "{err}");
        assert!(err.contains("nope"), "{err}");

        let bad_profile = BatchSpec::builder()
            .run(
                RunSpec::builder()
                    .synth("dsl", "cubic", 1)
                    .protocol("cubic")
                    .duration_s(2.0)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        assert!(run_batch(&bad_profile).unwrap_err().contains("unknown profile"));
    }

    #[test]
    fn profile_file_source_replays_without_fitting() {
        let inst = Profile::Ethernet.builder().seed(3).duration(SimTime::from_secs(3)).sample();
        let train = run_protocol(&inst, "cubic", SimTime::from_secs(3), 3);
        let kind = ModelKind::IBoxNet;
        let artifact = ModelArtifact::new(&kind, crate::model::fit_model(&kind, &train));
        let path = std::env::temp_dir().join("ibox_batch_test_profile.json");
        artifact.save(&path).unwrap();

        let spec = RunSpec::builder()
            .profile_file(path.to_string_lossy())
            .protocol("cubic")
            .duration_s(3.0)
            .seed(5)
            .build()
            .unwrap();
        let scope = ibox_obs::scoped();
        let (record, trace) = execute_run(&spec).unwrap();
        let metrics = scope.finish().snapshot();
        assert_eq!(record.model, "profile replay");
        assert!(trace.len() > 100);
        assert!(!metrics.counters.contains_key("model.fit"), "artifact replay must not fit");
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite: flow mode is exactly as deterministic as packet mode —
    /// at every fidelity level a mixed batch is byte-identical at
    /// `--jobs 1` and `--jobs 4`, and a spec that never mentions
    /// `fidelity` behaves exactly like an explicit `packet` one.
    #[test]
    fn every_fidelity_level_is_jobs_invariant() {
        use ibox_runner::Fidelity;
        let batch_at = |fidelity: Fidelity| {
            let mut b = BatchSpec::builder();
            for (i, model) in [ModelKind::IBoxNet, ModelKind::StatisticalLoss, ModelKind::IBoxNet]
                .into_iter()
                .enumerate()
            {
                b = b.run(
                    RunSpec::builder()
                        .synth("ethernet", "cubic", 200 + i as u64)
                        .protocol(if i % 2 == 0 { "cubic" } else { "reno" })
                        .duration_s(3.0)
                        .seed(30 + i as u64)
                        .model(model)
                        .fidelity(fidelity)
                        .build()
                        .unwrap(),
                );
            }
            b.build().unwrap()
        };
        for fidelity in Fidelity::ALL {
            let batch = batch_at(fidelity);
            let r1 = run_batch_jobs(&batch, 1).unwrap();
            let r4 = run_batch_jobs(&batch, 4).unwrap();
            assert_eq!(r1.to_json(), r4.to_json(), "{fidelity} results must not depend on jobs");
        }
        // Default == packet, byte for byte: a legacy batch file with no
        // `fidelity` field anywhere replays identically to an explicit
        // packet-fidelity batch.
        let packet = run_batch_jobs(&batch_at(Fidelity::Packet), 1).unwrap();
        let legacy = {
            let mut v = serde_json::parse_value(&batch_at(Fidelity::Packet).to_json()).unwrap();
            if let serde::Value::Object(fields) = &mut v {
                for (key, val) in fields.iter_mut() {
                    if key != "runs" {
                        continue;
                    }
                    if let serde::Value::Array(runs) = val {
                        for run in runs.iter_mut() {
                            if let serde::Value::Object(rf) = run {
                                rf.retain(|(k, _)| k != "fidelity");
                            }
                        }
                    }
                }
            }
            let json = serde_json::to_string(&v).expect("value serializes");
            run_batch_jobs(&BatchSpec::from_json(&json).unwrap(), 1).unwrap()
        };
        assert_eq!(packet.to_json(), legacy.to_json());
        // And flow mode genuinely takes the fluid path: its records differ
        // from packet mode's (distributionally close, not bit-equal).
        let flow = run_batch_jobs(&batch_at(Fidelity::Flow), 1).unwrap();
        assert_ne!(packet.to_json(), flow.to_json());
    }

    /// Acceptance: a 3-stage composed path replays deterministically at
    /// every fidelity level and any `--jobs` value, and actually changes
    /// the replay (it is not silently ignored). Hybrid fidelity degrades
    /// to the packet engine on multi-stage chains — counted, and still
    /// jobs-invariant.
    #[test]
    fn composed_paths_are_jobs_invariant_at_every_fidelity() {
        use ibox_runner::Fidelity;
        let chain = serde_json::parse_value(
            r#"[
                {"rate_bps": 20e6, "prop_delay_ms": 5, "buffer_bytes": 80000},
                {"rate_bps": 8e6, "prop_delay_ms": 12, "buffer_bytes": 60000},
                {"rate_bps": 30e6, "prop_delay_ms": 3, "buffer_bytes": 120000}
            ]"#,
        )
        .unwrap();
        let batch_at = |fidelity: Fidelity, path: Option<serde::Value>| {
            let mut b = BatchSpec::builder();
            for i in 0..2u64 {
                let mut run = RunSpec::builder()
                    .synth("ethernet", "cubic", 300 + i)
                    .protocol(if i == 0 { "cubic" } else { "reno" })
                    .duration_s(3.0)
                    .seed(40 + i)
                    .fidelity(fidelity);
                if let Some(p) = &path {
                    run = run.path(p.clone());
                }
                b = b.run(run.build().unwrap());
            }
            b.build().unwrap()
        };
        for fidelity in Fidelity::ALL {
            let composed = batch_at(fidelity, Some(chain.clone()));
            let scope = ibox_obs::scoped();
            let r1 = run_batch_jobs(&composed, 1).unwrap();
            let metrics = scope.finish().snapshot();
            let r4 = run_batch_jobs(&composed, 4).unwrap();
            assert_eq!(
                r1.to_json(),
                r4.to_json(),
                "{fidelity} composed-path results must not depend on jobs"
            );
            let flat = run_batch_jobs(&batch_at(fidelity, None), 1).unwrap();
            assert_ne!(r1.to_json(), flat.to_json(), "{fidelity} replay must honor the path");
            if fidelity == Fidelity::Hybrid {
                // The flow-level warmup cannot model a multi-stage chain,
                // so hybrid degrades to packet — visibly.
                assert!(
                    metrics.counters.get("fidelity.fallback").copied().unwrap_or(0) >= 2,
                    "hybrid over a chain must count its packet fallback"
                );
            }
        }
        // Hybrid's fallback is the packet engine, byte for byte.
        let hybrid = run_batch_jobs(&batch_at(Fidelity::Hybrid, Some(chain.clone())), 1).unwrap();
        let packet = run_batch_jobs(&batch_at(Fidelity::Packet, Some(chain)), 1).unwrap();
        assert_eq!(hybrid.to_json(), packet.to_json());
    }

    /// A malformed or empty `path` is rejected with the run index, not a
    /// panic deep inside the engine.
    #[test]
    fn bad_path_specs_are_rejected_by_name() {
        let run_with = |raw: &str| {
            let spec = RunSpec::builder()
                .synth("ethernet", "cubic", 1)
                .protocol("cubic")
                .duration_s(2.0)
                .path(serde_json::parse_value(raw).unwrap())
                .build()
                .unwrap();
            run_batch(&BatchSpec::builder().run(spec).build().unwrap()).unwrap_err()
        };
        let err = run_with("[]");
        assert!(err.contains("at least one stage"), "{err}");
        let err = run_with(r#"[{"prop_delay_ms": 5}]"#);
        assert!(err.contains("bad path spec"), "{err}");
    }

    /// Satellite: batch runs an `IBoxMl` spec like any other kind, and the
    /// fit cache collapses duplicate (trace, kind, config, seed) fits.
    #[test]
    fn batch_fits_iboxml_and_dedups_identical_fits() {
        let ml = ModelKind::IBoxMl(ibox_runner::IBoxMlSpec {
            hidden_sizes: vec![6],
            epochs: 1,
            lr: 5e-3,
            tbptt: 32,
            with_cross_traffic: false,
            seed: 3,
        });
        // Two specs share (source, model); only the replay seed differs —
        // one fit, two replays.
        let spec = |seed: u64| {
            RunSpec::builder()
                .synth("ethernet", "cubic", 41)
                .protocol("vegas")
                .duration_s(3.0)
                .seed(seed)
                .model(ml.clone())
                .build()
                .unwrap()
        };
        let batch = BatchSpec::builder().run(spec(1)).run(spec(2)).build().unwrap();

        let run = |jobs: usize| {
            let scope = ibox_obs::scoped();
            let result = run_batch_jobs(&batch, jobs).unwrap();
            (result, scope.finish().snapshot())
        };
        let (r1, m1) = run(1);
        let (r2, m2) = run(2);
        assert_eq!(r1.to_json(), r2.to_json(), "results must not depend on jobs");
        assert_eq!(m1.counters, m2.counters, "cache counters must not depend on jobs");
        assert_eq!(r1.records[0].model, "iBoxML");
        assert_eq!(m1.counters["model.fit"], 1, "identical fits must be cached");
        assert_eq!(m1.counters["fitcache.miss"], 1);
        assert_eq!(m1.counters["fitcache.hit"], 1);
        assert_ne!(r1.records[0].metrics, r1.records[1].metrics, "replay seeds differ");
    }

    /// Satellite: ML replays through the batched session stay
    /// jobs-invariant — a 4-run iBoxML batch produces byte-identical
    /// results at `--jobs 1` and `--jobs 4` — and flipping
    /// `batch_streams` off (the legacy per-stream unroll) changes nothing
    /// but the code path.
    #[test]
    fn ml_replay_is_deterministic_across_jobs_and_session_paths() {
        let ml = ModelKind::IBoxMl(ibox_runner::IBoxMlSpec {
            hidden_sizes: vec![5],
            epochs: 1,
            lr: 5e-3,
            tbptt: 32,
            with_cross_traffic: false,
            seed: 9,
        });
        let batch_with = |batch_streams: bool| {
            let mut b = BatchSpec::builder();
            for i in 0..4u64 {
                b = b.run(
                    RunSpec::builder()
                        .synth("ethernet", "cubic", 51)
                        .protocol("vegas")
                        .duration_s(2.0)
                        .seed(20 + i)
                        .model(ml.clone())
                        .batch_streams(batch_streams)
                        .build()
                        .unwrap(),
                );
            }
            b.build().unwrap()
        };

        let batched = batch_with(true);
        let r1 = run_batch_jobs(&batched, 1).unwrap();
        let r4 = run_batch_jobs(&batched, 4).unwrap();
        assert_eq!(r1.to_json(), r4.to_json(), "ML replay must not depend on jobs");

        // The acceptance criterion: the session-batched path replays
        // byte-identically to the pre-redesign per-stream path.
        let per_stream = run_batch_jobs(&batch_with(false), 4).unwrap();
        assert_eq!(
            r1.to_json(),
            per_stream.to_json(),
            "batched and per-stream ML replay must agree bit-for-bit"
        );
    }
}
