//! Batch execution: typed [`RunSpec`]s from `ibox-runner`, executed here.
//!
//! The spec types live in the domain-light `ibox-runner` crate so every
//! layer can name them without cycles; this module supplies the execution
//! half — mapping a [`RunSource`] onto the testbed/trace/profile loaders
//! and a [`ModelKind`] onto the concrete fit+replay via
//! [`FitSimulate`](crate::abtest::FitSimulate).
//!
//! Determinism contract: a batch's results depend only on the specs, never
//! on `jobs`. Runs execute on the runner pool with per-run scoped metric
//! registries folded back in spec order, and [`BatchResult::to_json`] is
//! byte-identical at any parallelism.

use serde::{Deserialize, Serialize};

use ibox_runner::{BatchSpec, RunSource, RunSpec};
use ibox_sim::SimTime;
use ibox_testbed::{run_protocol, Profile};
use ibox_trace::metrics::TraceMetrics;
use ibox_trace::{from_csv, FlowMeta, FlowTrace};

use crate::abtest::FitSimulate;
use crate::IBoxNet;

/// Outcome of one [`RunSpec`]: identity plus the replay's summary metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The spec's `id`, or `run<index>` if the spec left it empty.
    pub id: String,
    /// Model display name ([`ModelKind::name`](ibox_runner::ModelKind::name)),
    /// or `"profile replay"` for [`RunSource::ProfileFile`] runs.
    pub model: String,
    /// Protocol replayed through the model.
    pub protocol: String,
    /// Replay duration, seconds.
    pub duration_s: f64,
    /// Replay seed.
    pub seed: u64,
    /// Summary metrics of the simulated trace.
    pub metrics: TraceMetrics,
}

/// All records of a batch, in spec order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchResult {
    /// One record per run, in the order the specs were given.
    pub records: Vec<RunRecord>,
}

impl BatchResult {
    /// Serialize to pretty JSON. Contains no wall-clock or parallelism
    /// information, so the bytes are identical at any `jobs` value.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("BatchResult serialization cannot fail")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("bad batch result: {e}"))
    }
}

/// Load a single-flow trace from `.json` or `.csv` (by extension).
fn load_trace(path: &str) -> Result<FlowTrace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let ext = std::path::Path::new(path).extension().and_then(|e| e.to_str()).unwrap_or("");
    match ext {
        "json" => serde_json::from_str(&text).map_err(|e| format!("bad JSON in {path}: {e}")),
        "csv" => {
            let meta = FlowMeta::new(path, "unknown", "imported");
            from_csv(&text, meta).map_err(|e| format!("bad CSV in {path}: {e}"))
        }
        other => Err(format!("unsupported trace extension {other:?} (use .json or .csv)")),
    }
}

/// Execute one spec: resolve the source, fit the model (unless the source
/// is an already-fitted profile), replay the spec's protocol, and summarize.
///
/// Returns the record *and* the simulated trace so callers that need the
/// full trace (e.g. `ibox simulate -o`) don't replay twice; batch callers
/// drop the trace in the worker.
pub fn execute_run(spec: &RunSpec) -> Result<(RunRecord, FlowTrace), String> {
    if !spec.duration_s.is_finite() || spec.duration_s <= 0.0 {
        return Err(format!("duration must be positive, got {}", spec.duration_s));
    }
    if ibox_cc::by_name(&spec.protocol).is_none() {
        return Err(format!("unknown protocol {:?}", spec.protocol));
    }
    let duration = SimTime::from_secs_f64(spec.duration_s);
    let (model_name, sim) = match &spec.source {
        RunSource::Synth { profile, protocol, seed } => {
            if ibox_cc::by_name(protocol).is_none() {
                return Err(format!("unknown training protocol {protocol:?}"));
            }
            let inst =
                Profile::from_name(profile)?.builder().seed(*seed).duration(duration).sample();
            let train = run_protocol(&inst, protocol, duration, *seed);
            (
                spec.model.name(),
                spec.model.fit_simulate(&train, &spec.protocol, duration, spec.seed),
            )
        }
        RunSource::TraceFile { path } => {
            let train = load_trace(path)?;
            (
                spec.model.name(),
                spec.model.fit_simulate(&train, &spec.protocol, duration, spec.seed),
            )
        }
        RunSource::ProfileFile { path } => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let net = IBoxNet::from_json(&text).map_err(|e| format!("bad profile {path}: {e}"))?;
            ("profile replay", net.simulate(&spec.protocol, duration, spec.seed))
        }
    };
    let record = RunRecord {
        id: spec.id.clone(),
        model: model_name.to_string(),
        protocol: spec.protocol.clone(),
        duration_s: spec.duration_s,
        seed: spec.seed,
        metrics: TraceMetrics::of(&sim),
    };
    Ok((record, sim))
}

/// Run every spec in the batch on the runner pool at the batch's own
/// `jobs` setting. Fails on the first erroring run (reported with its
/// index); otherwise returns records in spec order.
pub fn run_batch(batch: &BatchSpec) -> Result<BatchResult, String> {
    run_batch_jobs(batch, batch.jobs)
}

/// [`run_batch`] with the parallelism overridden (`0` = all cores) — the
/// `--jobs` flag. Results are identical at any value.
pub fn run_batch_jobs(batch: &BatchSpec, jobs: usize) -> Result<BatchResult, String> {
    let outcomes = ibox_runner::run_scoped(batch.runs.len(), jobs, |i| {
        // The per-run span totals add up to the batch's serial wall time,
        // which is what the CLI divides by to report the actual speedup.
        let _span = ibox_obs::span!("batch.run");
        execute_run(&batch.runs[i]).map(|(record, _trace)| record)
    });
    let mut records = Vec::with_capacity(outcomes.len());
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let mut record = outcome.map_err(|e| format!("run {i}: {e}"))?;
        if record.id.is_empty() {
            record.id = format!("run{i}");
        }
        records.push(record);
    }
    Ok(BatchResult { records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibox_runner::ModelKind;

    fn small_batch() -> BatchSpec {
        let mut b = BatchSpec::builder().jobs(1);
        for (i, model) in [
            ModelKind::IBoxNet,
            ModelKind::StatisticalLoss,
            ModelKind::IBoxNetNoCross,
            ModelKind::IBoxNet,
        ]
        .into_iter()
        .enumerate()
        {
            b = b.run(
                RunSpec::builder()
                    .synth("ethernet", "cubic", 100 + i as u64)
                    .protocol(if i % 2 == 0 { "vegas" } else { "cubic" })
                    .duration_s(3.0)
                    .seed(7 + i as u64)
                    .model(model)
                    .build()
                    .unwrap(),
            );
        }
        b.build().unwrap()
    }

    /// The acceptance property: same batch, jobs 1 vs 4 ⇒ byte-identical
    /// results JSON and identical metric counters.
    #[test]
    fn results_and_counters_identical_at_any_jobs() {
        let batch = small_batch();

        let scope1 = ibox_obs::scoped();
        let r1 = run_batch_jobs(&batch, 1).unwrap();
        let m1 = scope1.finish().snapshot();

        let scope4 = ibox_obs::scoped();
        let r4 = run_batch_jobs(&batch, 4).unwrap();
        let m4 = scope4.finish().snapshot();

        assert_eq!(r1.to_json(), r4.to_json(), "results must not depend on jobs");
        assert_eq!(m1.counters, m4.counters, "folded metric counters must not depend on jobs");
        assert_eq!(m1.histograms, m4.histograms, "folded histograms must not depend on jobs");
    }

    #[test]
    fn records_are_labelled_in_spec_order() {
        let batch = small_batch();
        let result = run_batch(&batch).unwrap();
        assert_eq!(result.records.len(), 4);
        assert_eq!(result.records[0].id, "run0");
        assert_eq!(result.records[0].model, "iBoxNet");
        assert_eq!(result.records[1].model, "Statistical loss");
        assert!(result.records.iter().all(|r| r.metrics.avg_rate_mbps > 0.0));
        // And the result itself round-trips through JSON.
        let back = BatchResult::from_json(&result.to_json()).unwrap();
        assert_eq!(back, result);
    }

    #[test]
    fn bad_specs_are_reported_with_their_index() {
        let batch = BatchSpec::builder()
            .run(
                RunSpec::builder()
                    .synth("ethernet", "cubic", 1)
                    .protocol("nope")
                    .duration_s(2.0)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let err = run_batch(&batch).unwrap_err();
        assert!(err.contains("run 0"), "{err}");
        assert!(err.contains("nope"), "{err}");

        let bad_profile = BatchSpec::builder()
            .run(
                RunSpec::builder()
                    .synth("dsl", "cubic", 1)
                    .protocol("cubic")
                    .duration_s(2.0)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        assert!(run_batch(&bad_profile).unwrap_err().contains("unknown profile"));
    }

    #[test]
    fn profile_file_source_replays_without_fitting() {
        let inst = Profile::Ethernet.builder().seed(3).duration(SimTime::from_secs(3)).sample();
        let train = run_protocol(&inst, "cubic", SimTime::from_secs(3), 3);
        let net = IBoxNet::fit(&train);
        let path = std::env::temp_dir().join("ibox_batch_test_profile.json");
        std::fs::write(&path, net.to_json()).unwrap();

        let spec = RunSpec::builder()
            .profile_file(path.to_string_lossy())
            .protocol("cubic")
            .duration_s(3.0)
            .seed(5)
            .build()
            .unwrap();
        let (record, trace) = execute_run(&spec).unwrap();
        assert_eq!(record.model, "profile replay");
        assert!(trace.len() > 100);
        let _ = std::fs::remove_file(&path);
    }
}
