//! # ibox
//!
//! A from-scratch reproduction of **iBox: Internet in a Box** (Ashok,
//! Duvvuri, Natarajan, Padmanabhan, Sellamanickam, Gehrke — HotNets 2020):
//! data-informed network simulation that turns input-output packet traces
//! into simulation models.
//!
//! ## The two model families
//!
//! * [`IBoxNet`] (§3) — a parameterized single-bottleneck network model
//!   `(b, d, B, C)`. The static parameters come from domain-knowledge
//!   estimators ([`estimator::StaticParams`]); the dynamic cross-traffic
//!   series from queue-dynamics inversion
//!   ([`estimator::CrossTrafficEstimate`], the "three forces"). The fitted
//!   model runs on a NetEm-like path emulator and can host *any*
//!   congestion-control protocol — the counterfactual engine.
//! * [`IBoxMl`] (§4) — a deep LSTM state-space model that learns
//!   `P(delay | packet stream)` end-to-end, with a Gaussian delay head and
//!   a Bernoulli loss head, teacher-forced training and self-fed
//!   (closed-loop) inference. Optionally takes the §3 cross-traffic
//!   estimate as an input feature — the §5.2 melding that mitigates
//!   control-loop bias (Fig. 7, Table 1).
//!
//! ## Melding (§5)
//!
//! * [`meld::discovery`] — SAX + motif "diff" to discover behaviours
//!   missing from the simulator (Fig. 8): reordering shows up as the
//!   symbol `'a'` present in real traces and absent from iBoxNet.
//! * [`meld::reorder`] — LSTM and linear-logistic reordering predictors
//!   that graft the missing behaviour onto iBoxNet output (Fig. 5).
//!
//! ## Evaluation harnesses (§2)
//!
//! * [`abtest::ensemble_test`] — fit per-trace models on protocol A,
//!   replay A and B, KS-compare metric distributions (Figs. 2 & 3).
//! * [`abtest::instance_test`] — per-instance models on a controlled path;
//!   k-means/t-SNE clustering of cross-correlation features (Fig. 4).
//! * [`baseline::StatisticalLossModel`] — the calibrated-emulator
//!   baseline with statistical loss (Fig. 3b).
//!
//! ## §6 open challenges, implemented as extensions
//!
//! * [`validity::ValidityRegion`] — "establishing the limits of model
//!   validity": per-feature training-support envelopes with coverage
//!   scoring of candidate traces.
//! * [`realism::realism_test`] — "test for realism": a discriminator
//!   (logistic over per-window summaries) that tries to tell simulator
//!   output from reality; realism = its failure to do so.
//! * [`adaptive::AdaptiveCross`] — "learning adaptive cross traffic":
//!   express the estimated cross traffic as `n` live TCP Cubic flows via
//!   the fair-share relation, so it reacts to the protocol under test.
//! * [`iboxnet::IBoxNet::fit_with_reordering`] — meld the discovered
//!   reordering behaviour into the *emulator*, not just the output trace.
//!
//! ## Batch execution
//!
//! * [`batch`] — executes typed [`RunSpec`]/[`BatchSpec`] job definitions
//!   (from `ibox-runner`, re-exported here) on a zero-dep thread pool.
//!   Results and folded metrics are bit-identical at any `jobs` value; the
//!   evaluation harnesses above all expose `_jobs` variants built on the
//!   same pool.
//!
//! ## Model artifacts & fit cache
//!
//! * [`model`] — the [`PathModel`] trait splits *fit* from *replay*:
//!   [`fit_model`] is the single fit entry point, [`FittedModel`] the
//!   serializable sum of every fitted family (including iBoxML's LSTM
//!   weights).
//! * [`artifact`] — versioned JSON envelopes ([`ModelArtifact`]) around
//!   fitted models; a saved-then-loaded model replays byte-identically.
//! * [`cache`] — the content-addressed [`FitCache`] (trace digest ×
//!   kind × config × seed) with single-flight lookups and
//!   `fitcache.hit`/`miss` obs counters, used by the ensemble harness,
//!   realism/validity extensions, and batch execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abtest;
pub mod adaptive;
pub mod artifact;
pub mod baseline;
pub mod batch;
pub mod cache;
pub mod estimator;
pub mod features;
pub mod iboxml;
pub mod iboxnet;
pub mod meld;
pub mod model;
pub mod realism;
pub mod validity;

pub use abtest::{
    ensemble_test, ensemble_test_jobs, instance_test, instance_test_jobs, EnsembleReport,
    InstanceReport, ModelKind,
};
pub use adaptive::AdaptiveCross;
pub use artifact::{ArtifactError, ModelArtifact, ARTIFACT_FILE_SUFFIX, MODEL_ARTIFACT_SCHEMA};
pub use baseline::StatisticalLossModel;
pub use batch::{
    execute_run, execute_run_cached, run_batch, run_batch_jobs, run_batch_with_cache, BatchResult,
    RunRecord,
};
pub use cache::{FitCache, FitCacheKey};
pub use estimator::{CrossTrafficEstimate, StaticParams};
pub use iboxml::{IBoxMl, IBoxMlConfig, IBoxMlConfigBuilder};
pub use iboxnet::IBoxNet;
pub use model::{fit_model, FittedIBoxMl, FittedModel, PathModel, ReplayOpts};
pub use realism::{realism_of_model_jobs, realism_test, realism_test_jobs, RealismReport};
pub use validity::{ValidityRegion, ValidityReport};

// The typed batch API, re-exported so downstream users need only `ibox`.
pub use ibox_runner::{
    suggested_jobs, BatchSpec, BatchSpecBuilder, Fidelity, IBoxMlSpec, RunSource, RunSpec,
    RunSpecBuilder,
};
