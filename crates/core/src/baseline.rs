//! The statistical-loss baseline (Fig. 3b).
//!
//! Pantheon's calibrated emulators \[45\] model the *effect* of unseen
//! cross traffic with "a simple statistical packet loss model" instead of
//! modelling the traffic itself. This baseline does exactly that: the same
//! `(b, d, B)` estimation as iBoxNet, no cross traffic, and a constant
//! Bernoulli loss probability calibrated to the training trace's observed
//! loss rate. Fig. 3(b) shows it matches ground truth worse than modelling
//! cross traffic explicitly — which this reproduction's `fig3` binary
//! re-measures.

use serde::{Deserialize, Serialize};

use ibox_cc::by_name;
use ibox_runner::Fidelity;
use ibox_sim::{PathConfig, PathEmulator, PathSpec, SimTime};
use ibox_trace::FlowTrace;

use crate::estimator::StaticParams;
use crate::model::fluid_plan;

/// A calibrated-emulator baseline: static parameters + statistical loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatisticalLossModel {
    /// Static path parameters (same estimators as iBoxNet).
    pub params: StaticParams,
    /// Calibrated Bernoulli loss probability.
    pub loss_rate: f64,
    /// Name of the trace/path this model was fitted on.
    pub fitted_on: String,
}

impl StatisticalLossModel {
    /// Fit on a trace: `(b, d, B)` plus the observed loss rate.
    pub fn fit(trace: &FlowTrace) -> Self {
        Self {
            params: StaticParams::estimate(trace),
            loss_rate: trace.loss_rate(),
            fitted_on: trace.meta.path.clone(),
        }
    }

    /// The emulated path: fitted bottleneck with random egress loss.
    pub fn path_config(&self) -> PathConfig {
        let mut p = PathConfig::simple(
            self.params.bandwidth_bps,
            self.params.prop_delay,
            self.params.buffer_bytes,
        );
        p.random_loss = self.loss_rate;
        p
    }

    /// Run `protocol` over the baseline for `duration`.
    pub fn simulate(&self, protocol: &str, duration: SimTime, seed: u64) -> FlowTrace {
        self.simulate_fidelity(protocol, duration, seed, Fidelity::Packet)
    }

    /// The fitted path (with its calibrated random loss) as a 1-stage
    /// chain.
    pub fn path_spec(&self) -> PathSpec {
        PathSpec::single(self.path_config())
    }

    /// [`StatisticalLossModel::simulate`] at an explicit [`Fidelity`]
    /// (same contract as `IBoxNet::simulate_fidelity`: unsupported
    /// protocols/paths degrade to the packet engine, counted in
    /// `fidelity.fallback`).
    pub fn simulate_fidelity(
        &self,
        protocol: &str,
        duration: SimTime,
        seed: u64,
        fidelity: Fidelity,
    ) -> FlowTrace {
        self.simulate_fidelity_over(protocol, duration, seed, fidelity, None)
    }

    /// [`StatisticalLossModel::simulate_fidelity`] through an arbitrary
    /// composed path (same contract as
    /// `IBoxNet::simulate_fidelity_over`). `None` replays the fitted
    /// single-bottleneck spec.
    pub fn simulate_fidelity_over(
        &self,
        protocol: &str,
        duration: SimTime,
        seed: u64,
        fidelity: Fidelity,
        path: Option<&PathSpec>,
    ) -> FlowTrace {
        let spec = path.cloned().unwrap_or_else(|| self.path_spec());
        let emu = PathEmulator::from_spec(spec, duration)
            .with_name(format!("statistical({})", self.fitted_on));
        if let Some((law, hybrid)) = fluid_plan(&emu.spec, protocol, fidelity, &emu.name) {
            let out = emu.run_sender_fluid(law, protocol, seed, hybrid);
            return out.traces.into_iter().next().expect("one recorded flow").into_normalized();
        }
        let cc = by_name(protocol)
            .unwrap_or_else(|| panic!("unknown congestion-control protocol {protocol:?}"));
        let out = emu.run_sender(cc, protocol, seed);
        out.traces.into_iter().next().expect("one recorded flow").into_normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibox_cc::Cubic;
    use ibox_sim::CrossTrafficCfg;

    fn gt_trace() -> FlowTrace {
        let emu = PathEmulator::from_spec(
            ibox_sim::PathSpec::single(PathConfig::simple(6e6, SimTime::from_millis(25), 60_000)),
            SimTime::from_secs(15),
        )
        .with_name("gt")
        .with_cross_traffic(CrossTrafficCfg::cbr(
            2e6,
            SimTime::ZERO,
            SimTime::from_secs(15),
        ));
        let out = emu.run_sender(Box::new(Cubic::new()), "m", 4);
        out.trace("m").unwrap().normalized()
    }

    #[test]
    fn calibrates_loss_to_the_trace() {
        let t = gt_trace();
        let m = StatisticalLossModel::fit(&t);
        assert!((m.loss_rate - t.loss_rate()).abs() < 1e-12);
        assert_eq!(m.path_config().random_loss, m.loss_rate);
    }

    #[test]
    fn simulation_reproduces_loss_statistics() {
        let t = gt_trace();
        let m = StatisticalLossModel::fit(&t);
        let sim = m.simulate("cubic", SimTime::from_secs(15), 8);
        // Loss should be in the calibrated ballpark. Note: the replayed
        // Cubic also experiences buffer-overflow losses on top of the
        // statistical ones, so we only check the same order of magnitude.
        assert!(
            sim.loss_rate() >= 0.3 * m.loss_rate,
            "sim loss {} vs calibrated {}",
            sim.loss_rate(),
            m.loss_rate
        );
    }

    #[test]
    fn no_cross_traffic_in_the_baseline() {
        let m = StatisticalLossModel::fit(&gt_trace());
        let sim = m.simulate("cubic", SimTime::from_secs(10), 1);
        // The baseline's Cubic sees the whole (estimated) link for itself;
        // the statistical losses cap the window but there is no competing
        // queue occupancy, a structural difference Fig. 3(b) exposes.
        assert!(sim.len() > 100);
    }
}
