//! Endpoint handlers and the shared application state.
//!
//! Every handler is a pure `(App, Request) → Response` function over the
//! JSON API; the transport loop lives in [`crate::server`]. Handlers are
//! wrapped by [`handle`], which records the per-endpoint observability
//! contract — `serve.requests.<ep>`, `serve.errors.<ep>`, a latency
//! histogram, and p50/p95 streaming quantiles — and converts a handler
//! panic into a 500 instead of killing the worker thread.
//!
//! Determinism: `/replay` answers with exactly
//! `serde_json::to_string(&trace)` for the registered model — the same
//! bytes the offline `ibox replay -o` path writes — and `/batch` answers
//! with `BatchResult::to_json()`, which is jobs-invariant by the batch
//! layer's contract.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

use serde::{Deserialize, Value};

use ibox_obs::Stopwatch;

use ibox::{BatchSpec, FitCache, FitCacheKey, ModelArtifact, ModelKind, ReplayOpts};
use ibox_ingest::{FinalizeOutput, IngestConfig, SessionStore};
use ibox_sim::SimTime;
use ibox_trace::{FlowMeta, FlowTrace, PacketRecord};

use crate::http::{Request, Response};
use crate::registry::{split_version, ModelRegistry};

/// State of an asynchronous `/fit` job keyed by model id.
enum FitJob {
    /// A worker thread is fitting (or about to).
    Pending,
    /// The fit failed; the error is served once to the next `/fit`
    /// request for the same id (which clears it, allowing a retry).
    Failed(String),
}

/// Resource knobs beyond [`App::new`]'s positional arguments: ingest
/// budgets and refit cadence, the registry byte cap, and the fit-cache
/// entry cap. `Default` keeps every limit unbounded (ingest budgets use
/// the `IngestConfig` defaults).
#[derive(Debug, Clone, Default)]
pub struct AppOptions {
    /// Ingest-session budgets and refit cadence.
    pub ingest: IngestConfig,
    /// Byte cap for artifact envelopes on disk (`0` = unbounded).
    pub registry_cap_bytes: u64,
    /// Entry cap for the in-memory fit cache (`0` = unbounded).
    pub fitcache_max_entries: usize,
}

/// Everything the handlers share: the fit cache, the artifact registry,
/// the ingest session store, and the async-fit job table.
pub struct App {
    /// Content-addressed fit cache, disk-backed on the registry dir.
    pub cache: FitCache,
    /// The artifact registry backing `GET /models`.
    pub registry: ModelRegistry,
    /// Chunked ingest sessions under `<model_dir>/ingest`.
    pub ingest: SessionStore,
    batch_jobs_cap: usize,
    max_async_fits: usize,
    stop: Arc<AtomicBool>,
    addr: OnceLock<SocketAddr>,
    started: Stopwatch,
    fit_jobs: Mutex<HashMap<String, FitJob>>,
    fits_active: AtomicUsize,
    fit_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl App {
    /// Build the state for a daemon serving models out of `model_dir`.
    /// `batch_jobs_cap` bounds `/batch` parallelism, `max_async_fits`
    /// bounds concurrent background fit threads, and `stop` is the
    /// shared shutdown flag the `/shutdown` endpoint trips.
    pub fn new(
        model_dir: PathBuf,
        batch_jobs_cap: usize,
        max_async_fits: usize,
        stop: Arc<AtomicBool>,
    ) -> Result<Self, String> {
        Self::with_options(model_dir, batch_jobs_cap, max_async_fits, stop, AppOptions::default())
    }

    /// [`App::new`] with explicit resource limits.
    pub fn with_options(
        model_dir: PathBuf,
        batch_jobs_cap: usize,
        max_async_fits: usize,
        stop: Arc<AtomicBool>,
        opts: AppOptions,
    ) -> Result<Self, String> {
        let mut cache = FitCache::with_dir(&model_dir)?;
        if opts.fitcache_max_entries > 0 {
            cache = cache.with_max_entries(opts.fitcache_max_entries);
        }
        Ok(Self {
            cache,
            registry: ModelRegistry::open(&model_dir)?.with_byte_cap(opts.registry_cap_bytes),
            ingest: SessionStore::open(&model_dir, opts.ingest).map_err(|e| e.to_string())?,
            batch_jobs_cap: batch_jobs_cap.max(1),
            max_async_fits: max_async_fits.max(1),
            stop,
            addr: OnceLock::new(),
            started: Stopwatch::start(),
            fit_jobs: Mutex::new(HashMap::new()),
            fits_active: AtomicUsize::new(0),
            fit_threads: Mutex::new(Vec::new()),
        })
    }

    /// Record the bound listener address (used by `/shutdown` to wake
    /// the blocking acceptor with a self-connection).
    pub fn set_addr(&self, addr: SocketAddr) {
        let _ = self.addr.set(addr);
    }

    /// Whether shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Trip the shutdown flag and wake the acceptor.
    pub fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(addr) = self.addr.get() {
            // A throwaway connection unblocks the acceptor's accept().
            let _ = std::net::TcpStream::connect_timeout(addr, std::time::Duration::from_secs(1));
        }
    }

    /// Join every background fit thread (part of graceful drain).
    pub fn drain_fits(&self) {
        let threads: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.fit_threads.lock().expect("fit thread list lock"));
        for t in threads {
            let _ = t.join();
        }
    }

    fn jobs_lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, FitJob>> {
        self.fit_jobs.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Stable label for per-endpoint metrics (bounded cardinality: hostile
/// paths all fall into `other`).
pub fn endpoint_label(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/models") => "models",
        ("GET", _) if path.starts_with("/models/") && path.ends_with("/versions") => {
            "models_versions"
        }
        ("GET", _) if path.starts_with("/models/") => "models_id",
        ("GET", "/traces") => "traces",
        ("GET", _) if path.starts_with("/trace/") => "trace",
        ("GET", "/ingest/sessions") => "ingest_sessions",
        ("GET", _) if path.starts_with("/ingest/sessions/") => "ingest_session",
        ("POST", _) if path.starts_with("/traces/") && path.ends_with("/append") => "ingest_append",
        ("POST", _) if path.starts_with("/traces/") && path.ends_with("/finalize") => {
            "ingest_finalize"
        }
        ("POST", "/fit") => "fit",
        ("POST", "/replay") => "replay",
        ("POST", "/batch") => "batch",
        ("POST", "/shutdown") => "shutdown",
        _ => "other",
    }
}

/// Whether requests to this endpoint get a causal trace of their own.
/// Observability read endpoints are exempt: tracing the act of reading
/// traces would pollute the collector with noise, and `other` covers
/// hostile paths whose traces nobody will ever look up.
fn traced_endpoint(label: &str) -> bool {
    !matches!(label, "healthz" | "metrics" | "trace" | "traces" | "other")
}

/// Route and execute `req`, recording the per-endpoint metrics contract.
/// A panicking handler is caught and answered as a 500 — one bad request
/// must not take a worker thread (and its queue slot) down with it.
pub fn handle(app: &Arc<App>, req: &Request) -> Response {
    let label = endpoint_label(&req.method, &req.path);
    let t0 = Stopwatch::start();
    // Each traced request becomes a root span `request.<label>` under its
    // own trace ID — the caller's via `x-ibox-trace-id` (hex, or any
    // token: non-hex hashes deterministically), otherwise server-assigned.
    let scope = if traced_endpoint(label) {
        let trace = req
            .header("x-ibox-trace-id")
            .and_then(ibox_obs::trace::parse_trace_id)
            .unwrap_or_else(ibox_obs::trace::next_trace_id);
        ibox_obs::trace::start_root(trace, &format!("request.{label}"))
    } else {
        None
    };
    let resp = std::panic::catch_unwind(AssertUnwindSafe(|| dispatch(app, req)))
        .unwrap_or_else(|_| Response::error(500, "internal error: handler panicked"));
    // Flush the trace before the metrics block so `/trace/<id>` reflects
    // a request as soon as its response is on the wire.
    drop(scope);
    let latency_ms = t0.elapsed_ms();

    let reg = ibox_obs::global();
    reg.counter("serve.requests").inc();
    reg.counter(&format!("serve.requests.{label}")).inc();
    if resp.status >= 400 {
        reg.counter("serve.errors").inc();
        reg.counter(&format!("serve.errors.{label}")).inc();
    }
    reg.histogram(&format!("serve.latency_ms.{label}")).record(latency_ms);
    for q in [0.5, 0.95] {
        let est =
            reg.streaming_quantile(&format!("serve.latency_ms.{label}.p{}", (q * 100.0) as u32), q);
        est.lock().unwrap_or_else(|p| p.into_inner()).observe(latency_ms);
    }
    resp
}

fn dispatch(app: &Arc<App>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(app),
        ("GET", "/metrics") => handle_metrics(req),
        ("GET", "/models") => handle_models(app),
        ("GET", path) if path.starts_with("/models/") && path.ends_with("/versions") => {
            let id = &path["/models/".len()..path.len() - "/versions".len()];
            handle_model_versions(app, id)
        }
        ("GET", path) if path.starts_with("/models/") => {
            handle_model_by_id(app, &path["/models/".len()..])
        }
        ("GET", "/traces") => handle_traces(),
        ("GET", path) if path.starts_with("/trace/") => {
            handle_trace_by_id(&path["/trace/".len()..], req)
        }
        ("GET", "/ingest/sessions") => handle_ingest_sessions(app),
        ("GET", path) if path.starts_with("/ingest/sessions/") => {
            handle_ingest_session_by_id(app, &path["/ingest/sessions/".len()..])
        }
        ("POST", path) if path.starts_with("/traces/") && path.ends_with("/append") => {
            let id = &path["/traces/".len()..path.len() - "/append".len()];
            handle_ingest_append(app, id, req)
        }
        ("POST", path) if path.starts_with("/traces/") && path.ends_with("/finalize") => {
            let id = &path["/traces/".len()..path.len() - "/finalize".len()];
            handle_ingest_finalize(app, id)
        }
        // Disambiguation 404 (typed): `/traces/{id}` is neither a causal
        // trace (`/trace/{id}`) nor a session view (`/ingest/sessions/{id}`).
        // (`GET` on an append/finalize path still 405s below.)
        ("GET", path)
            if path.starts_with("/traces/")
                && !path.ends_with("/append")
                && !path.ends_with("/finalize") =>
        {
            Response::error(
                404,
                &format!(
                    "no resource at {path}: ingest sessions are read at \
                     /ingest/sessions/{{id}}, causal traces at /trace/{{id}}"
                ),
            )
        }
        ("POST", "/fit") => handle_fit(app, req),
        ("POST", "/replay") => handle_replay(app, req),
        ("POST", "/batch") => handle_batch(app, req),
        ("POST", "/shutdown") => handle_shutdown(app),
        (_, path)
            if KNOWN_PATHS.contains(&path)
                || path.starts_with("/models/")
                || path.starts_with("/trace/")
                || path.starts_with("/traces/")
                || path.starts_with("/ingest/sessions/") =>
        {
            Response::error(405, &format!("method {} not allowed on {path}", req.method))
        }
        (_, path) => Response::error(404, &format!("no such endpoint {path}")),
    }
}

/// Paths that exist (under some method), for distinguishing 405 from 404.
const KNOWN_PATHS: &[&str] = &[
    "/healthz",
    "/metrics",
    "/models",
    "/traces",
    "/ingest/sessions",
    "/fit",
    "/replay",
    "/batch",
    "/shutdown",
];

/// Build a compact JSON object response from string pairs.
fn object_response(status: u16, fields: &[(&str, &str)]) -> Response {
    let value = Value::Object(
        fields.iter().map(|(k, v)| (k.to_string(), Value::Str(v.to_string()))).collect(),
    );
    Response::json(status, serde_json::to_string(&value).expect("object body serializes"))
}

fn handle_healthz(app: &Arc<App>) -> Response {
    let uptime = (app.started.elapsed_s() as u64).to_string();
    object_response(200, &[("status", "ok"), ("uptime_s", &uptime)])
}

fn handle_metrics(req: &Request) -> Response {
    let snapshot = ibox_obs::global().snapshot();
    match req.query_param("format") {
        Some("prometheus") => {
            Response::text(200, "text/plain; version=0.0.4", snapshot.to_prometheus())
        }
        Some(other) => Response::error(400, &format!("unknown metrics format {other:?}")),
        None => match serde_json::to_string(&snapshot) {
            Ok(json) => Response::json(200, json),
            Err(e) => Response::error(500, &format!("cannot serialize metrics: {e}")),
        },
    }
}

/// Bounded most-recent-first listing of traces still in the ring.
fn handle_traces() -> Response {
    let summaries = ibox_obs::trace::collector().list(32);
    match serde_json::to_string(&summaries) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("cannot serialize trace list: {e}")),
    }
}

fn handle_trace_by_id(id: &str, req: &Request) -> Response {
    let Some(trace) = ibox_obs::trace::parse_trace_id(id) else {
        return Response::error(400, &format!("bad trace id {id:?}"));
    };
    let Some((name, events)) = ibox_obs::trace::collector().get(trace) else {
        return Response::error(404, &format!("no trace {id:?} (not recorded, or evicted)"));
    };
    match req.query_param("format") {
        Some("chrome") => {
            Response::json(200, ibox_obs::trace::to_chrome_json(trace, &name, &events))
        }
        Some(other) => Response::error(400, &format!("unknown trace format {other:?}")),
        None => Response::json(200, ibox_obs::trace::to_json(trace, &name, &events)),
    }
}

fn handle_models(app: &Arc<App>) -> Response {
    let summaries = app.registry.list();
    match serde_json::to_string(&summaries) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("cannot serialize model list: {e}")),
    }
}

fn handle_model_by_id(app: &Arc<App>, id: &str) -> Response {
    if let Some(job) = app.jobs_lock().get(id) {
        return match job {
            FitJob::Pending => object_response(202, &[("model", id), ("status", "pending")]),
            FitJob::Failed(e) => Response::error_with(
                500,
                "fit_failed",
                &format!("fit failed for model {id}"),
                Some(e),
            ),
        };
    }
    match app.registry.get(id) {
        Ok(artifact) => Response::json(200, artifact.to_json()),
        Err(e) => Response::error(e.status(), &e.to_string()),
    }
}

/// Parse a request body as a JSON object, mapping failures to 400s.
fn body_object(req: &Request) -> Result<Value, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "body is not valid utf-8"))?;
    let value = serde_json::parse_value(text)
        .map_err(|e| Response::error(400, &format!("body is not valid json: {e}")))?;
    if value.as_object().is_none() {
        return Err(Response::error(400, "body must be a json object"));
    }
    Ok(value)
}

/// Extract an optional typed field, mapping type errors to 400s.
fn field<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, Response> {
    match v.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => T::from_value(x)
            .map(Some)
            .map_err(|e| Response::error(400, &format!("field {name:?}: {e}"))),
    }
}

/// Extract a required typed field.
fn required<T: Deserialize>(v: &Value, name: &str) -> Result<T, Response> {
    field(v, name)?.ok_or_else(|| Response::error(400, &format!("missing field {name:?}")))
}

fn checked_duration(duration_s: f64) -> Result<SimTime, Response> {
    if !duration_s.is_finite() || duration_s <= 0.0 || duration_s > 3600.0 {
        return Err(Response::error(
            400,
            &format!("duration_s must be in (0, 3600], got {duration_s}"),
        ));
    }
    Ok(SimTime::from_secs_f64(duration_s))
}

fn checked_protocol(name: &str) -> Result<(), Response> {
    if ibox_cc::by_name(name).is_none() {
        return Err(Response::error(400, &format!("unknown protocol {name:?}")));
    }
    Ok(())
}

/// Resolve the training trace of a `/fit` request: either an inline
/// `"trace"` (a serialized `FlowTrace`) or a `"synth"` spec naming a
/// testbed profile.
fn training_trace(body: &Value) -> Result<FlowTrace, Response> {
    if let Some(t) = body.get("trace") {
        return FlowTrace::from_value(t)
            .map_err(|e| Response::error(400, &format!("field \"trace\": {e}")));
    }
    let Some(synth) = body.get("synth") else {
        return Err(Response::error(400, "fit request needs \"trace\" or \"synth\""));
    };
    let profile: String = required(synth, "profile")?;
    let protocol: String = field(synth, "protocol")?.unwrap_or_else(|| "cubic".to_string());
    let seed: u64 = field(synth, "seed")?.unwrap_or(1);
    let duration = checked_duration(field(synth, "duration_s")?.unwrap_or(10.0))?;
    checked_protocol(&protocol)?;
    let inst = ibox_testbed::Profile::from_name(&profile)
        .map_err(|e| Response::error(400, &e))?
        .builder()
        .seed(seed)
        .duration(duration)
        .sample();
    Ok(ibox_testbed::run_protocol(&inst, &protocol, duration, seed))
}

/// Fit through the single-flight cache and publish the artifact under
/// its content-addressed id.
fn fit_and_register(
    app: &App,
    kind: &ModelKind,
    train: &FlowTrace,
    id: &str,
) -> Result<(), String> {
    let (key, model) = app.cache.fit_path_model_keyed(kind, train);
    debug_assert_eq!(key.id(), id);
    let artifact = ModelArtifact::new(kind, model);
    app.registry.put(id, &artifact).map_err(|e| e.to_string())
}

/// Map an ingest-layer error onto the typed HTTP envelope.
fn ingest_error(e: &ibox_ingest::IngestError) -> Response {
    Response::error(e.http_status(), &e.to_string())
}

fn handle_ingest_sessions(app: &Arc<App>) -> Response {
    match app.ingest.list() {
        Ok(sessions) => match serde_json::to_string(&sessions) {
            Ok(json) => Response::json(200, json),
            Err(e) => Response::error(500, &format!("cannot serialize session list: {e}")),
        },
        Err(e) => ingest_error(&e),
    }
}

fn handle_ingest_session_by_id(app: &Arc<App>, id: &str) -> Response {
    match app.ingest.status(id) {
        Ok(status) => match serde_json::to_string(&status) {
            Ok(json) => Response::json(200, json),
            Err(e) => Response::error(500, &format!("cannot serialize session: {e}")),
        },
        Err(e) => ingest_error(&e),
    }
}

/// Fit a session's (snapshot or finalized) trace through the
/// single-flight cache and register it as the next lineage version
/// `<id>-v<fit_seq>` plus the latest pointer at `<id>`.
fn fit_session_version(app: &App, id: &str, out: &FinalizeOutput) -> Result<String, Response> {
    let (_key, model) = app.cache.fit_path_model_keyed(&out.kind, &out.trace);
    let parent = (out.fit_seq > 1).then(|| format!("{id}-v{}", out.fit_seq - 1));
    let artifact =
        ModelArtifact::new(&out.kind, model).with_lineage(parent, out.trace.digest(), out.fit_seq);
    app.registry.put_version(id, &artifact).map_err(|e| Response::error(e.status(), &e.to_string()))
}

fn handle_ingest_append(app: &Arc<App>, id: &str, req: &Request) -> Response {
    let body = match body_object(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let parsed = (|| {
        let offset: u64 = required(&body, "offset")?;
        let records: Vec<PacketRecord> = required(&body, "records")?;
        let kind: Option<ModelKind> = field(&body, "model")?;
        let meta: Option<FlowMeta> = field(&body, "meta")?;
        Ok((offset, records, kind, meta))
    })();
    let (offset, records, kind, meta) = match parsed {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let res = match app.ingest.append(id, kind, meta, offset, records) {
        Ok(r) => r,
        Err(e) => return ingest_error(&e),
    };
    // Configured refit cadence: fold the stream so far into the next
    // registered version, synchronously — the client learns the version
    // id its chunk produced.
    let version = if res.refit_due {
        match app.ingest.snapshot(id) {
            Ok(out) => match fit_session_version(app, id, &out) {
                Ok(v) => Some(v),
                Err(resp) => return resp,
            },
            Err(e) => return ingest_error(&e),
        }
    } else {
        None
    };
    let mut fields = vec![
        ("session".to_string(), Value::Str(id.to_string())),
        ("outcome".to_string(), Value::Str(res.outcome.as_str().to_string())),
        ("next_offset".to_string(), Value::U64(res.next_offset)),
        ("chunks".to_string(), Value::U64(res.chunks)),
        ("buffered".to_string(), Value::U64(res.buffered as u64)),
    ];
    if let Some(wm) = &res.watermark {
        fields.push(("watermark".to_string(), serde::Serialize::to_value(wm)));
    }
    if let Some(v) = version {
        fields.push(("version".to_string(), Value::Str(v)));
    }
    match serde_json::to_string(&Value::Object(fields)) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("cannot serialize append result: {e}")),
    }
}

fn handle_ingest_finalize(app: &Arc<App>, id: &str) -> Response {
    let out = match app.ingest.finalize(id) {
        Ok(o) => o,
        Err(e) => return ingest_error(&e),
    };
    let version = match fit_session_version(app, id, &out) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let records = out.trace.len().to_string();
    let fit_seq = out.fit_seq.to_string();
    object_response(
        200,
        &[
            ("model", id),
            ("version", &version),
            ("fit_seq", &fit_seq),
            ("records", &records),
            ("status", "ready"),
        ],
    )
}

fn handle_model_versions(app: &Arc<App>, id: &str) -> Response {
    match app.registry.versions(id) {
        Ok(versions) => match serde_json::to_string(&versions) {
            Ok(json) => Response::json(200, json),
            Err(e) => Response::error(500, &format!("cannot serialize versions: {e}")),
        },
        Err(e) => Response::error(e.status(), &e.to_string()),
    }
}

fn handle_fit(app: &Arc<App>, req: &Request) -> Response {
    let body = match body_object(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let parsed = (|| {
        let kind: ModelKind = field(&body, "model")?.unwrap_or(ModelKind::IBoxNet);
        let wait: bool = field(&body, "wait")?.unwrap_or(false);
        let train = training_trace(&body)?;
        Ok((kind, wait, train))
    })();
    let (kind, wait, train) = match parsed {
        Ok(p) => p,
        Err(resp) => return resp,
    };

    let id = FitCacheKey::for_fit(&kind, &train).id();
    if app.registry.contains(&id) {
        return object_response(200, &[("model", &id), ("status", "ready")]);
    }

    if wait {
        return match fit_and_register(app, &kind, &train, &id) {
            Ok(()) => object_response(200, &[("model", &id), ("status", "ready")]),
            Err(e) => Response::error_with(
                500,
                "fit_failed",
                &format!("fit failed for model {id}"),
                Some(&e),
            ),
        };
    }

    // Async path: claim the job slot under the table lock, then spawn.
    {
        let mut jobs = app.jobs_lock();
        match jobs.get(&id) {
            Some(FitJob::Pending) => {
                return object_response(202, &[("model", &id), ("status", "pending")]);
            }
            Some(FitJob::Failed(_)) => {
                let Some(FitJob::Failed(e)) = jobs.remove(&id) else { unreachable!() };
                return Response::error_with(
                    500,
                    "fit_failed",
                    &format!("fit failed for model {id}"),
                    Some(&e),
                );
            }
            None => {
                if app.fits_active.load(Ordering::SeqCst) >= app.max_async_fits {
                    ibox_obs::global().counter("serve.shed.fit").inc();
                    return Response::overloaded("fit queue full, retry later");
                }
                jobs.insert(id.clone(), FitJob::Pending);
                app.fits_active.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    let app2 = Arc::clone(app);
    let id2 = id.clone();
    // The background fit outlives this request's root scope, so it gets a
    // detached child span that flushes straight to the collector: the
    // request's trace grows an `async-fit` subtree when the fit lands.
    let link = ibox_obs::trace::link(1);
    let handle = std::thread::spawn(move || {
        let _tracing = link.as_ref().map(|l| l.thread_scope(0, "async-fit"));
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            fit_and_register(&app2, &kind, &train, &id2)
        }))
        .unwrap_or_else(|_| Err("fit panicked".to_string()));
        let mut jobs = app2.jobs_lock();
        match outcome {
            Ok(()) => {
                jobs.remove(&id2);
            }
            Err(e) => {
                ibox_obs::warn!("async fit {id2} failed: {e}");
                jobs.insert(id2.clone(), FitJob::Failed(e));
            }
        }
        drop(jobs);
        app2.fits_active.fetch_sub(1, Ordering::SeqCst);
    });
    {
        // Keep the handle for graceful drain; reap finished threads so
        // the list stays bounded by max_async_fits in steady state.
        let mut threads = app.fit_threads.lock().expect("fit thread list lock");
        let (done, running): (Vec<_>, Vec<_>) = threads.drain(..).partition(|t| t.is_finished());
        for t in done {
            let _ = t.join();
        }
        *threads = running;
        threads.push(handle);
    }
    object_response(202, &[("model", &id), ("status", "pending")])
}

fn handle_replay(app: &Arc<App>, req: &Request) -> Response {
    let body = match body_object(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let parsed = (|| {
        let model_id: String = required(&body, "model")?;
        let protocol: String = required(&body, "protocol")?;
        let duration = checked_duration(field(&body, "duration_s")?.unwrap_or(30.0))?;
        let seed: u64 = field(&body, "seed")?.unwrap_or(1);
        // Batched-session ML replay is the default; `false` selects the
        // legacy per-stream unroll (same bytes out, reference arm).
        let batch_streams: bool = field(&body, "batch_streams")?.unwrap_or(true);
        // Replay engine fidelity; absent means the exact pre-knob packet
        // engine, so existing clients see byte-identical responses.
        let fidelity: ibox::Fidelity = field(&body, "fidelity")?.unwrap_or_default();
        // Optional composed path: replay the model through this chain of
        // bottleneck stages instead of its fitted single-stage spec.
        let path: Option<ibox_sim::PathSpec> = field(&body, "path")?;
        if let Some(p) = &path {
            if p.is_empty() {
                return Err(Response::error(400, "field \"path\": needs at least one stage"));
            }
        }
        checked_protocol(&protocol)?;
        Ok((model_id, protocol, duration, seed, batch_streams, fidelity, path))
    })();
    let (model_id, protocol, duration, seed, batch_streams, fidelity, path) = match parsed {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    // Version resolution: an explicit `<id>-vN` pins that version; a
    // base id with lineage resolves deterministically to its newest
    // version. The pin holds for the whole replay, so registry eviction
    // cannot remove the resolved version mid-read.
    let resolved = if split_version(&model_id).is_some() {
        model_id.clone()
    } else {
        app.registry.latest_version(&model_id).unwrap_or_else(|| model_id.clone())
    };
    let _pin = app.registry.pin(&resolved);
    let artifact = match app.registry.get(&resolved) {
        Ok(a) => a,
        Err(e) => return Response::error(e.status(), &e.to_string()),
    };
    let trace = artifact.model.simulate_with(
        &protocol,
        duration,
        seed,
        ReplayOpts { batch_streams, fidelity, path },
    );
    ibox_obs::global().counter("serve.replay.packets").add(trace.len() as u64);
    // Exactly the bytes `ibox replay -o out.json` writes for this model:
    // the replay path is byte-identical online and offline.
    match serde_json::to_string(&trace) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("cannot serialize trace: {e}")),
    }
}

fn handle_batch(app: &Arc<App>, req: &Request) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body is not valid utf-8"),
    };
    let batch: BatchSpec = match serde_json::from_str(text) {
        Ok(b) => b,
        Err(e) => return Response::error(400, &format!("bad batch spec: {e}")),
    };
    // The spec's own `jobs` applies, capped by the server's budget; the
    // result bytes are identical at any value by the batch contract.
    let jobs =
        if batch.jobs == 0 { app.batch_jobs_cap } else { batch.jobs.min(app.batch_jobs_cap) };
    match ibox::run_batch_with_cache(&batch, jobs, &app.cache) {
        Ok(result) => Response::json(200, result.to_json()),
        Err(e) => Response::error(500, &format!("batch failed: {e}")),
    }
}

fn handle_shutdown(app: &Arc<App>) -> Response {
    ibox_obs::info!("shutdown requested over http");
    app.begin_shutdown();
    let mut resp = object_response(200, &[("status", "draining")]);
    resp.close = true;
    resp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_app(tag: &str) -> (Arc<App>, PathBuf) {
        let dir = std::env::temp_dir().join(format!("ibox_routes_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app = App::new(dir.clone(), 2, 1, Arc::new(AtomicBool::new(false)))
            .expect("app state builds");
        (Arc::new(app), dir)
    }

    fn get(target: &str) -> Request {
        let (path, query) = target.split_once('?').unwrap_or((target, ""));
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn body_text(resp: &Response) -> String {
        String::from_utf8(resp.body.clone()).expect("utf-8 body")
    }

    #[test]
    fn metrics_content_type_switches_with_format() {
        let (app, dir) = test_app("metrics_ct");

        let json = handle(&app, &get("/metrics"));
        assert_eq!(json.status, 200);
        assert_eq!(json.content_type, "application/json");
        assert!(body_text(&json).starts_with('{'), "json snapshot body");

        let prom = handle(&app, &get("/metrics?format=prometheus"));
        assert_eq!(prom.status, 200);
        assert_eq!(prom.content_type, "text/plain; version=0.0.4");
        let text = body_text(&prom);
        assert!(text.contains("# TYPE "), "exposition has TYPE lines:\n{text}");
        assert!(!text.starts_with('{'), "prometheus body must not be json");

        assert_eq!(handle(&app, &get("/metrics?format=xml")).status, 400);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_fit_exposes_its_span_tree_over_http() {
        ibox_obs::trace::set_enabled(true);
        let (app, dir) = test_app("traced_fit");

        let mut fit = get("/fit");
        fit.method = "POST".to_string();
        fit.headers.push(("x-ibox-trace-id".to_string(), "routes-test-fit".to_string()));
        fit.body = br#"{"wait":true,"model":"IBoxNet",
            "synth":{"profile":"ethernet","protocol":"cubic","seed":417,"duration_s":2}}"#
            .to_vec();
        let resp = handle(&app, &fit);
        assert_eq!(resp.status, 200, "{}", body_text(&resp));

        // The caller-supplied (non-hex, hence hashed) id resolves to the
        // same trace on the read side.
        let trace = handle(&app, &get("/trace/routes-test-fit"));
        assert_eq!(trace.status, 200, "{}", body_text(&trace));
        let body = body_text(&trace);
        for span in ["request.fit", "fit-cache", "model-fit"] {
            assert!(body.contains(span), "span {span:?} missing from:\n{body}");
        }

        let chrome = handle(&app, &get("/trace/routes-test-fit?format=chrome"));
        assert_eq!(chrome.status, 200);
        assert!(body_text(&chrome).contains("traceEvents"));
        assert_eq!(handle(&app, &get("/trace/routes-test-fit?format=xml")).status, 400);

        // Listing includes the request trace; unknown traces 404.
        let listing = body_text(&handle(&app, &get("/traces")));
        assert!(listing.contains("request.fit"), "{listing}");
        assert_eq!(handle(&app, &get("/trace/ffffffffffffff01")).status, 404);

        let _ = std::fs::remove_dir_all(&dir);
    }

    fn post(path: &str, body: &str) -> Request {
        let mut req = get(path);
        req.method = "POST".to_string();
        req.body = body.as_bytes().to_vec();
        req
    }

    /// Parse `{"error": {"code", "message", "detail"?}}` out of an error
    /// response, failing the test on any other shape.
    fn envelope(resp: &Response) -> (String, String, Option<String>) {
        let v = serde_json::parse_value(&body_text(resp)).expect("error body is json");
        let err = v.get("error").expect("body has an \"error\" field");
        assert!(err.as_object().is_some(), "\"error\" must be an object, got {err:?}");
        let text = |field: &str| match err.get(field) {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("error.{field} must be a string, got {other:?}"),
        };
        let detail = err.get("detail").map(|_| text("detail"));
        (text("code"), text("message"), detail)
    }

    /// Satellite: every error, on every route, is the one typed envelope —
    /// status-appropriate `code`, human `message`, optional `detail`.
    #[test]
    fn error_responses_share_one_typed_envelope() {
        let (app, dir) = test_app("error_envelope");

        // 404: unknown endpoint.
        let resp = handle(&app, &get("/nope"));
        assert_eq!(resp.status, 404);
        let (code, message, detail) = envelope(&resp);
        assert_eq!(code, "not_found");
        assert!(message.contains("/nope"), "{message}");
        assert_eq!(detail, None);

        // 405: known path, wrong method.
        let mut resp = handle(&app, &post("/healthz", ""));
        assert_eq!(resp.status, 405);
        assert_eq!(envelope(&resp).0, "method_not_allowed");

        // 400s: bad body, bad field type, unknown protocol, bad format.
        for (req, needle) in [
            (post("/replay", "not json"), "not valid json"),
            (post("/replay", r#"{"protocol": "cubic"}"#), "missing field \"model\""),
            (
                post("/replay", r#"{"model": "m", "protocol": "cubic", "batch_streams": 3}"#),
                "batch_streams",
            ),
            (
                post("/replay", r#"{"model": "m", "protocol": "cubic", "fidelity": "fluid"}"#),
                "unknown fidelity",
            ),
            (post("/replay", r#"{"model": "m", "protocol": "warp"}"#), "unknown protocol"),
            (post("/batch", r#"{"jobs": []}"#), "bad batch spec"),
            (get("/metrics?format=xml"), "unknown metrics format"),
            (get("/trace/"), "bad trace id"),
        ] {
            resp = handle(&app, &req);
            assert_eq!(resp.status, 400, "{} {}", req.method, req.path);
            let (code, message, _) = envelope(&resp);
            assert_eq!(code, "bad_request");
            assert!(message.contains(needle), "{message:?} missing {needle:?}");
        }

        // 404: replaying a model that is not registered.
        resp = handle(&app, &post("/replay", r#"{"model": "absent", "protocol": "cubic"}"#));
        assert_eq!(resp.status, 404);
        assert_eq!(envelope(&resp).0, "not_found");

        // 500: a failed async fit reports the typed envelope with detail.
        app.jobs_lock().insert("m1".to_string(), FitJob::Failed("boom".to_string()));
        resp = handle(&app, &get("/models/m1"));
        assert_eq!(resp.status, 500);
        let (code, message, detail) = envelope(&resp);
        assert_eq!(code, "fit_failed");
        assert!(message.contains("m1"), "{message}");
        assert_eq!(detail.as_deref(), Some("boom"));

        // 503: the load-shedding response carries the overloaded code.
        resp = Response::overloaded("server at capacity");
        assert_eq!(envelope(&resp).0, "overloaded");

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `/replay` accepts the `batch_streams` knob; both settings return
    /// byte-identical traces (here with an emulator model — the ML
    /// byte-identity is proven at the core layer).
    #[test]
    fn replay_batch_streams_knob_is_accepted_and_byte_invariant() {
        let (app, dir) = test_app("replay_knob");
        let fit = post(
            "/fit",
            r#"{"wait":true,"model":"IBoxNet",
                "synth":{"profile":"ethernet","protocol":"cubic","seed":11,"duration_s":2}}"#,
        );
        let resp = handle(&app, &fit);
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
        let fit_body = serde_json::parse_value(&body_text(&resp)).unwrap();
        let Some(Value::Str(id)) = fit_body.get("model").cloned() else { panic!("model id") };

        let replay = |extra: &str| {
            let body =
                format!(r#"{{"model":"{id}","protocol":"vegas","duration_s":2,"seed":5{extra}}}"#);
            let resp = handle(&app, &post("/replay", &body));
            assert_eq!(resp.status, 200, "{}", body_text(&resp));
            resp.body
        };
        let default = replay("");
        let batched = replay(r#","batch_streams":true"#);
        let per_stream = replay(r#","batch_streams":false"#);
        assert_eq!(default, batched, "default is the batched path");
        assert_eq!(batched, per_stream, "knob must not change replay bytes");

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `/replay` accepts the `fidelity` knob: omitting it and spelling
    /// `"packet"` are byte-identical (existing clients are untouched),
    /// while `"flow"` and `"hybrid"` select the fluid engine and return
    /// valid — but engine-distinct — traces.
    #[test]
    fn replay_fidelity_knob_is_accepted_and_defaults_to_packet() {
        let (app, dir) = test_app("replay_fidelity");
        let fit = post(
            "/fit",
            r#"{"wait":true,"model":"IBoxNet",
                "synth":{"profile":"ethernet","protocol":"cubic","seed":11,"duration_s":2}}"#,
        );
        let resp = handle(&app, &fit);
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
        let fit_body = serde_json::parse_value(&body_text(&resp)).unwrap();
        let Some(Value::Str(id)) = fit_body.get("model").cloned() else { panic!("model id") };

        let replay = |extra: &str| {
            let body =
                format!(r#"{{"model":"{id}","protocol":"cubic","duration_s":2,"seed":5{extra}}}"#);
            let resp = handle(&app, &post("/replay", &body));
            assert_eq!(resp.status, 200, "{}", body_text(&resp));
            resp.body
        };
        let default = replay("");
        let packet = replay(r#","fidelity":"packet""#);
        assert_eq!(default, packet, "absent fidelity must mean the packet engine");
        for fidelity in ["flow", "hybrid"] {
            let fluid = replay(&format!(r#","fidelity":"{fidelity}""#));
            assert_ne!(fluid, packet, "{fidelity} must route to the fluid engine");
            let trace = serde_json::parse_value(std::str::from_utf8(&fluid).unwrap())
                .expect("fluid replay returns a json trace");
            assert!(trace.get("records").is_some(), "{fidelity} trace has records");
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `/replay` accepts a composed `path` (a chain of bottleneck stages):
    /// the chain changes the replay, an empty chain is a 400, and a
    /// fidelity the chain cannot support falls back to the packet engine
    /// with the `fidelity.fallback` counter incremented (satellite).
    #[test]
    fn replay_accepts_a_composed_path_and_counts_fallbacks() {
        let (app, dir) = test_app("replay_path");
        let fit = post(
            "/fit",
            r#"{"wait":true,"model":"IBoxNet",
                "synth":{"profile":"ethernet","protocol":"cubic","seed":11,"duration_s":2}}"#,
        );
        let resp = handle(&app, &fit);
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
        let fit_body = serde_json::parse_value(&body_text(&resp)).unwrap();
        let Some(Value::Str(id)) = fit_body.get("model").cloned() else { panic!("model id") };

        let chain = r#","path":[
            {"rate_bps":20e6,"prop_delay_ms":5,"buffer_bytes":80000},
            {"rate_bps":8e6,"prop_delay_ms":12,"buffer_bytes":60000}]"#;
        let replay = |extra: &str| {
            let body =
                format!(r#"{{"model":"{id}","protocol":"cubic","duration_s":2,"seed":5{extra}}}"#);
            let resp = handle(&app, &post("/replay", &body));
            assert_eq!(resp.status, 200, "{}", body_text(&resp));
            resp.body
        };
        let flat = replay("");
        let composed = replay(chain);
        assert_ne!(flat, composed, "the composed path must change the replay");

        // Determinism: the same composed request answers the same bytes.
        assert_eq!(composed, replay(chain));

        // Flow fidelity runs the chained fluid engine; hybrid cannot model
        // a multi-stage chain, so it degrades to packet — counted.
        let flow = replay(&format!(r#"{chain},"fidelity":"flow""#));
        assert_ne!(flow, composed, "flow over a chain must use the fluid engine");
        let scope = ibox_obs::scoped();
        let hybrid = replay(&format!(r#"{chain},"fidelity":"hybrid""#));
        let metrics = scope.finish().snapshot();
        assert_eq!(hybrid, composed, "hybrid's chain fallback is the packet engine");
        assert!(
            metrics.counters.get("fidelity.fallback").copied().unwrap_or(0) >= 1,
            "the fallback must be counted: {:?}",
            metrics.counters
        );

        // An empty chain is a client error, not a panic.
        let body = format!(r#"{{"model":"{id}","protocol":"cubic","path":[]}}"#);
        let resp = handle(&app, &post("/replay", &body));
        assert_eq!(resp.status, 400, "{}", body_text(&resp));
        assert!(body_text(&resp).contains("at least one stage"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
