//! The transport loop: bounded accept queue, worker pool, graceful drain.
//!
//! Topology: one acceptor thread blocks on `TcpListener::accept` and
//! pushes connections into a bounded queue; `jobs` worker threads pop
//! connections and run the keep-alive request loop against
//! [`crate::routes::handle`]. Nothing in the pipeline grows without
//! bound:
//!
//! * the queue holds at most `max_inflight` connections — an arrival
//!   beyond that is answered `503 Retry-After: 1` and closed on the
//!   acceptor thread (counter `serve.shed`), so overload degrades into
//!   fast rejections, not memory growth or deadlock;
//! * every connection carries read/write timeouts, per-request parse
//!   limits ([`crate::http::HttpLimits`]), and a keep-alive request cap.
//!
//! Shutdown (via [`ServerHandle::shutdown`] or `POST /shutdown`) trips a
//! flag and wakes the acceptor with a self-connection: the listener
//! stops accepting, already-accepted connections are served to
//! completion, workers drain the queue and exit, and background fit
//! threads are joined — in-flight work always finishes.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ibox_ingest::IngestConfig;

use crate::http::{parse_request, HttpLimits, Response};
use crate::routes::{self, App, AppOptions};

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads — also the `/batch` parallelism cap (`0` = auto).
    pub jobs: usize,
    /// Bound on queued (accepted, unserved) connections; arrivals past
    /// it are shed with `503 Retry-After`.
    pub max_inflight: usize,
    /// Directory holding the fit cache and model registry.
    pub model_dir: PathBuf,
    /// Socket read/write timeout per request.
    pub read_timeout: Duration,
    /// Request parse limits.
    pub limits: HttpLimits,
    /// Most requests served per keep-alive connection.
    pub keep_alive_requests: usize,
    /// Ingest-session budgets and refit cadence.
    pub ingest: IngestConfig,
    /// Byte cap for registry artifacts on disk (`0` = unbounded).
    pub registry_cap_bytes: u64,
    /// Entry cap for the in-memory fit cache (`0` = unbounded).
    pub fitcache_max_entries: usize,
}

impl ServeConfig {
    /// Defaults for a daemon at `addr` serving models from `model_dir`.
    pub fn new(addr: impl Into<String>, model_dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: addr.into(),
            jobs: 0,
            max_inflight: 64,
            model_dir: model_dir.into(),
            read_timeout: Duration::from_secs(10),
            limits: HttpLimits::default(),
            keep_alive_requests: 1000,
            ingest: IngestConfig::default(),
            registry_cap_bytes: 0,
            fitcache_max_entries: 0,
        }
    }
}

/// The bounded hand-off between the acceptor and the workers.
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

struct QueueInner {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner { conns: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Try to enqueue; a full (or closed) queue hands the connection
    /// back so the caller can shed it.
    fn push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut inner = self.inner.lock().expect("conn queue lock");
        if inner.closed || inner.conns.len() >= self.cap {
            return Err(conn);
        }
        inner.conns.push_back(conn);
        self.ready.notify_one();
        Ok(())
    }

    /// Pop the next connection, blocking; `None` once closed and empty.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().expect("conn queue lock");
        loop {
            if let Some(conn) = inner.conns.pop_front() {
                return Some(conn);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("conn queue wait");
        }
    }

    /// Stop accepting pushes and wake every worker to drain and exit.
    fn close(&self) {
        self.inner.lock().expect("conn queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// A handle for stopping a running server from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    app: Arc<App>,
}

impl ServerHandle {
    /// Begin graceful drain: stop accepting, finish in-flight work.
    pub fn shutdown(&self) {
        self.app.begin_shutdown();
    }
}

/// A running daemon: acceptor + workers, stoppable and joinable.
pub struct Server {
    addr: SocketAddr,
    app: Arc<App>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr`, spawn the acceptor and worker threads, and
    /// return the running server. The registry/cache directory is
    /// created if missing.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        // Tracing is on by default for a daemon — the collector is a
        // bounded ring and untraced requests pay one atomic load. Set
        // IBOX_TRACE=off to run dark.
        if !matches!(std::env::var("IBOX_TRACE").as_deref(), Ok("off") | Ok("0")) {
            ibox_obs::trace::set_enabled(true);
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;

        let jobs = if config.jobs == 0 { ibox_runner::suggested_jobs() } else { config.jobs };
        let stop = Arc::new(AtomicBool::new(false));
        let opts = AppOptions {
            ingest: config.ingest.clone(),
            registry_cap_bytes: config.registry_cap_bytes,
            fitcache_max_entries: config.fitcache_max_entries,
        };
        let app = Arc::new(App::with_options(
            config.model_dir.clone(),
            jobs,
            jobs.max(2),
            Arc::clone(&stop),
            opts,
        )?);
        app.set_addr(addr);

        let queue = Arc::new(ConnQueue::new(config.max_inflight));
        // Workers inherit the spawning thread's effective obs registry
        // via the process-global registry; per-request metrics from any
        // worker land in one place.
        let workers = (0..jobs)
            .map(|w| {
                let queue = Arc::clone(&queue);
                let app = Arc::clone(&app);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || {
                        while let Some(conn) = queue.pop() {
                            handle_connection(conn, &app, &config);
                        }
                    })
                    .map_err(|e| format!("cannot spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;

        let acceptor = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break; // the waking connection is dropped unanswered
                        }
                        match conn {
                            Ok(conn) => {
                                if let Err(rejected) = queue.push(conn) {
                                    shed(rejected);
                                }
                            }
                            Err(e) => {
                                ibox_obs::warn!("accept failed: {e}");
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                    }
                    queue.close();
                })
                .map_err(|e| format!("cannot spawn acceptor: {e}"))?
        };

        ibox_obs::info!("serving on http://{addr} with {jobs} workers");
        Ok(Server { addr, app, acceptor: Some(acceptor), workers })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clonable handle that can stop this server from anywhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { app: Arc::clone(&self.app) }
    }

    /// Block until the server has fully drained: acceptor stopped,
    /// queued and in-flight requests served, background fits joined.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.app.drain_fits();
        ibox_obs::info!("server on {} drained", self.addr);
    }
}

/// Answer an over-capacity arrival on the acceptor thread: cheap 503
/// with `Retry-After`, then close. Tight write timeout — a slow reader
/// must not stall accepting.
fn shed(mut conn: TcpStream) {
    ibox_obs::global().counter("serve.shed").inc();
    let _ = conn.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = Response::overloaded("server at capacity").write_to(&mut conn);
}

/// The keep-alive request loop for one connection.
fn handle_connection(conn: TcpStream, app: &Arc<App>, config: &ServeConfig) {
    if conn.set_read_timeout(Some(config.read_timeout)).is_err()
        || conn.set_write_timeout(Some(config.read_timeout)).is_err()
    {
        return;
    }
    let _ = conn.set_nodelay(true);
    let Ok(read_half) = conn.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = conn;

    for _ in 0..config.keep_alive_requests.max(1) {
        match parse_request(&mut reader, &config.limits) {
            Ok(req) => {
                let mut resp = routes::handle(app, &req);
                // Drain: once shutdown is requested, finish this request
                // but do not keep the connection alive.
                resp.close = resp.close || req.wants_close() || app.stopping();
                let close = resp.close;
                if resp.write_to(&mut writer).is_err() || close {
                    break;
                }
            }
            Err(err) => {
                if let Some(status) = err.status() {
                    ibox_obs::global().counter("serve.parse_errors").inc();
                    let mut resp = Response::error(status, &err.to_string());
                    resp.close = true;
                    let _ = resp.write_to(&mut writer);
                }
                break;
            }
        }
    }
    let _ = writer.flush();
}
