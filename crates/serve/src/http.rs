//! A minimal, defensive HTTP/1.1 implementation over `std` I/O.
//!
//! The server half is [`parse_request`] + [`Response`]: enough of
//! HTTP/1.1 for a JSON API behind a trusted load balancer or loopback —
//! `Content-Length` bodies, keep-alive, no chunked transfer, no TLS.
//! Every input limit is explicit ([`HttpLimits`]) and every failure is a
//! typed [`HttpError`] that maps to a 4xx/5xx status via
//! [`HttpError::status`]; the parser never panics on hostile bytes
//! (property-tested in `tests/http_props.rs`) and never reads more than
//! the declared body length, so a keep-alive connection stays in sync.
//!
//! The client half ([`HttpClient`], [`request_url`]) is the same wire
//! format from the other side, used by `ibox call`, the serve bench, and
//! the integration tests — the whole stack stays zero-dependency.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Input-size ceilings enforced while parsing a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Longest accepted request line (method + path + version), bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line: usize,
    /// Most headers accepted per request.
    pub max_headers: usize,
    /// Largest accepted `Content-Length`, bytes.
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self {
            max_request_line: 8 * 1024,
            max_header_line: 16 * 1024,
            max_headers: 64,
            max_body: 64 * 1024 * 1024,
        }
    }
}

/// Why a request could not be parsed. [`HttpError::status`] maps each
/// variant to the response status the server should write (or `None`
/// when the peer is already gone and no reply makes sense).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed cleanly before any request byte arrived —
    /// the normal end of a keep-alive connection, not an error.
    ConnectionClosed,
    /// The connection closed mid-request.
    Truncated,
    /// A socket read timed out before the request completed.
    Timeout,
    /// Transport-level failure.
    Io(String),
    /// The request line is not `METHOD SP PATH SP VERSION`.
    BadRequestLine(String),
    /// The request line exceeds [`HttpLimits::max_request_line`].
    RequestLineTooLong {
        /// The configured ceiling, bytes.
        max: usize,
    },
    /// A method this server does not implement.
    UnsupportedMethod(String),
    /// An HTTP version other than 1.x.
    UnsupportedVersion(String),
    /// A header line without a `name: value` shape, or an unsupported
    /// transfer encoding.
    BadHeader(String),
    /// A header line exceeds [`HttpLimits::max_header_line`].
    HeaderTooLong {
        /// The configured ceiling, bytes.
        max: usize,
    },
    /// More headers than [`HttpLimits::max_headers`].
    TooManyHeaders {
        /// The configured ceiling.
        max: usize,
    },
    /// `Content-Length` is present but not a decimal integer.
    BadContentLength(String),
    /// The declared body exceeds [`HttpLimits::max_body`].
    BodyTooLarge {
        /// Declared `Content-Length`.
        len: usize,
        /// The configured ceiling, bytes.
        max: usize,
    },
}

impl HttpError {
    /// Status code to answer with, or `None` when no response should be
    /// written (connection already closed or transport broken).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::ConnectionClosed | HttpError::Truncated | HttpError::Io(_) => None,
            HttpError::Timeout => Some(408),
            HttpError::BadRequestLine(_)
            | HttpError::BadHeader(_)
            | HttpError::BadContentLength(_) => Some(400),
            HttpError::RequestLineTooLong { .. } => Some(414),
            HttpError::UnsupportedMethod(_) => Some(405),
            HttpError::UnsupportedVersion(_) => Some(505),
            HttpError::HeaderTooLong { .. } | HttpError::TooManyHeaders { .. } => Some(431),
            HttpError::BodyTooLarge { .. } => Some(413),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::Truncated => write!(f, "connection closed mid-request"),
            HttpError::Timeout => write!(f, "request timed out"),
            HttpError::Io(detail) => write!(f, "i/o error: {detail}"),
            HttpError::BadRequestLine(line) => write!(f, "malformed request line {line:?}"),
            HttpError::RequestLineTooLong { max } => {
                write!(f, "request line exceeds {max} bytes")
            }
            HttpError::UnsupportedMethod(m) => write!(f, "method {m:?} not supported"),
            HttpError::UnsupportedVersion(v) => write!(f, "http version {v:?} not supported"),
            HttpError::BadHeader(line) => write!(f, "malformed header {line:?}"),
            HttpError::HeaderTooLong { max } => write!(f, "header line exceeds {max} bytes"),
            HttpError::TooManyHeaders { max } => write!(f, "more than {max} headers"),
            HttpError::BadContentLength(v) => write!(f, "bad content-length {v:?}"),
            HttpError::BodyTooLarge { len, max } => {
                write!(f, "body of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request: method, path, lowercased headers, raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` or `POST` (anything else is rejected while parsing).
    pub method: String,
    /// Request path with any `?query` suffix stripped.
    pub path: String,
    /// Raw query string (without the `?`; empty when absent).
    pub query: String,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length`-delimited; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header named `name` (lowercase), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Value of query parameter `name` (`?name=value&...`), if present.
    /// No percent-decoding — this API's parameter values are plain
    /// tokens (`format=chrome`).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

fn io_error(e: &std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        std::io::ErrorKind::UnexpectedEof => HttpError::Truncated,
        _ => HttpError::Io(e.to_string()),
    }
}

/// Read one CRLF- (or bare-LF-) terminated line of at most `cap` bytes,
/// without the terminator. `Ok(None)` means clean EOF before any byte.
/// The error constructor for an oversized line is supplied by the caller
/// so request-line and header limits stay distinct.
fn read_line(
    reader: &mut impl BufRead,
    cap: usize,
    too_long: impl Fn() -> HttpError,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Truncated);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(line));
                }
                if line.len() >= cap {
                    return Err(too_long());
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(io_error(&e)),
        }
    }
}

/// Parse one request from `reader`, enforcing `limits` throughout. Reads
/// exactly the request's bytes and no more, so the reader is positioned
/// at the next request on a keep-alive connection.
pub fn parse_request(reader: &mut impl BufRead, limits: &HttpLimits) -> Result<Request, HttpError> {
    let line = match read_line(reader, limits.max_request_line, || HttpError::RequestLineTooLong {
        max: limits.max_request_line,
    })? {
        None => return Err(HttpError::ConnectionClosed),
        Some(line) => line,
    };
    let line = String::from_utf8(line)
        .map_err(|_| HttpError::BadRequestLine("(non-utf8 request line)".into()))?;

    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::BadRequestLine(truncate_for_display(&line))),
    };
    if !matches!(method, "GET" | "POST") {
        return Err(HttpError::UnsupportedMethod(truncate_for_display(method)));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::UnsupportedVersion(truncate_for_display(version)));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequestLine(truncate_for_display(&line)));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, limits.max_header_line, || HttpError::HeaderTooLong {
            max: limits.max_header_line,
        })?
        .ok_or(HttpError::Truncated)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders { max: limits.max_headers });
        }
        let line = String::from_utf8(line)
            .map_err(|_| HttpError::BadHeader("(non-utf8 header)".into()))?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader(truncate_for_display(&line)));
        };
        let name = name.trim();
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(HttpError::BadHeader(truncate_for_display(&line)));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let transfer_encoding = headers.iter().find(|(k, _)| k == "transfer-encoding");
    if transfer_encoding.is_some() {
        return Err(HttpError::BadHeader("transfer-encoding not supported".into()));
    }

    let body_len = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => {
            v.parse::<usize>().map_err(|_| HttpError::BadContentLength(truncate_for_display(v)))?
        }
    };
    if body_len > limits.max_body {
        return Err(HttpError::BodyTooLarge { len: body_len, max: limits.max_body });
    }
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body).map_err(|e| io_error(&e))?;

    Ok(Request { method: method.to_string(), path, query, headers, body })
}

/// Clip hostile input to a displayable length for error messages.
fn truncate_for_display(s: &str) -> String {
    const MAX: usize = 120;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let cut = (1..=MAX).rev().find(|&i| s.is_char_boundary(i)).unwrap_or(0);
        format!("{}…", &s[..cut])
    }
}

/// Canonical machine-readable error code for the statuses this server
/// emits — the `error.code` field of the JSON error envelope. Stable API:
/// clients dispatch on these slugs, not on message text.
pub fn error_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        408 => "request_timeout",
        409 => "conflict",
        413 => "payload_too_large",
        414 => "uri_too_long",
        431 => "headers_too_large",
        500 => "internal",
        503 => "overloaded",
        505 => "http_version_unsupported",
        _ => "error",
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// A response ready to serialize: status, body, content type,
/// connection handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value (`application/json` unless built via
    /// [`Response::text`]).
    pub content_type: String,
    /// `Retry-After` seconds, set on load-shedding 503s.
    pub retry_after_s: Option<u32>,
    /// Whether to close the connection after writing this response.
    pub close: bool,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            body: body.into(),
            content_type: "application/json".to_string(),
            retry_after_s: None,
            close: false,
        }
    }

    /// A response with an explicit content type (e.g. the Prometheus
    /// exposition format's `text/plain; version=0.0.4`).
    pub fn text(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Self { content_type: content_type.to_string(), ..Self::json(status, body) }
    }

    /// An error response with the API's one typed envelope,
    /// `{"error": {"code", "message"}}`, where `code` is the canonical
    /// machine-readable slug for `status` ([`error_code`]). Use
    /// [`Response::error_with`] to override the code or attach detail.
    pub fn error(status: u16, message: &str) -> Self {
        Self::error_with(status, error_code(status), message, None)
    }

    /// [`Response::error`] with an explicit `code` and optional `detail`
    /// field — `{"error": {"code", "message", "detail"?}}`. `detail`
    /// carries structured context (e.g. the offending field or limit);
    /// it is omitted, not null, when absent, so clients can match on
    /// presence. All fields are JSON-escaped via the serde layer.
    pub fn error_with(status: u16, code: &str, message: &str, detail: Option<&str>) -> Self {
        let mut inner = vec![
            ("code".to_string(), serde::Value::Str(code.to_string())),
            ("message".to_string(), serde::Value::Str(message.to_string())),
        ];
        if let Some(d) = detail {
            inner.push(("detail".to_string(), serde::Value::Str(d.to_string())));
        }
        let body = serde::Value::Object(vec![("error".to_string(), serde::Value::Object(inner))]);
        Self::json(status, serde_json::to_string(&body).expect("error body serializes"))
    }

    /// The load-shedding response: `503` with `Retry-After`.
    pub fn overloaded(message: &str) -> Self {
        let mut resp = Self::error(503, message);
        resp.retry_after_s = Some(1);
        resp.close = true;
        resp
    }

    /// Serialize status line, headers, and body to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        if let Some(s) = self.retry_after_s {
            head.push_str(&format!("retry-after: {s}\r\n"));
        }
        head.push_str(if self.close { "connection: close\r\n\r\n" } else { "\r\n" });
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// A blocking keep-alive HTTP client over one `TcpStream` — the consumer
/// side of this module's wire format, shared by `ibox call`, the serve
/// bench, and the tests.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

impl HttpClient {
    /// Connect to `addr` (`host:port`) with `timeout` applied to the
    /// connection attempt and every subsequent read/write.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, String> {
        let target: std::net::SocketAddr = addr.parse().or_else(|_| {
            use std::net::ToSocketAddrs;
            addr.to_socket_addrs()
                .map_err(|e| format!("cannot resolve {addr}: {e}"))?
                .next()
                .ok_or_else(|| format!("cannot resolve {addr}: no addresses"))
        })?;
        let stream = TcpStream::connect_timeout(&target, timeout)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
        stream.set_write_timeout(Some(timeout)).map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Self { reader: BufReader::new(stream), writer, host: addr.to_string() })
    }

    /// Issue one request and read the full response: `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Vec<u8>), String> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`request`](Self::request) with extra headers (e.g.
    /// `x-ibox-trace-id`) sent after `host`/`content-length`.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(String, String)],
        body: Option<&[u8]>,
    ) -> Result<(u16, Vec<u8>), String> {
        let body = body.unwrap_or(&[]);
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n",
            self.host,
            body.len()
        );
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes()).map_err(|e| format!("send failed: {e}"))?;
        self.writer.write_all(body).map_err(|e| format!("send failed: {e}"))?;
        self.writer.flush().map_err(|e| format!("send failed: {e}"))?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<(u16, Vec<u8>), String> {
        let limits = HttpLimits::default();
        let status_line = read_line(&mut self.reader, limits.max_request_line, || {
            HttpError::RequestLineTooLong { max: limits.max_request_line }
        })
        .map_err(|e| format!("bad response: {e}"))?
        .ok_or_else(|| "server closed the connection".to_string())?;
        let status_line = String::from_utf8_lossy(&status_line).to_string();
        let status: u16 = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status line {status_line:?}"))?;

        let mut content_length = 0usize;
        loop {
            let line = read_line(&mut self.reader, limits.max_header_line, || {
                HttpError::HeaderTooLong { max: limits.max_header_line }
            })
            .map_err(|e| format!("bad response headers: {e}"))?
            .ok_or_else(|| "truncated response headers".to_string())?;
            if line.is_empty() {
                break;
            }
            let line = String::from_utf8_lossy(&line).to_string();
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad content-length {value:?}: {e}"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).map_err(|e| format!("truncated response body: {e}"))?;
        Ok((status, body))
    }
}

/// One-shot request against an `http://host:port/path` URL.
pub fn request_url(
    url: &str,
    method: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> Result<(u16, Vec<u8>), String> {
    request_url_with_headers(url, method, &[], body, timeout)
}

/// [`request_url`] with extra request headers — how `ibox call
/// --trace-id` sends `x-ibox-trace-id`.
pub fn request_url_with_headers(
    url: &str,
    method: &str,
    headers: &[(String, String)],
    body: Option<&[u8]>,
    timeout: Duration,
) -> Result<(u16, Vec<u8>), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("unsupported url {url:?} (only http:// is supported)"))?;
    let (addr, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    if addr.is_empty() {
        return Err(format!("unsupported url {url:?}: missing host"));
    }
    let mut client = HttpClient::connect(addr, timeout)?;
    client.request_with_headers(method, path, headers, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        parse_request(&mut BufReader::new(bytes), &HttpLimits::default())
    }

    #[test]
    fn parses_a_minimal_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_with_body_and_splits_query() {
        let req = parse(b"POST /fit?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.path, "/fit");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"abcd");

        let req = parse(b"GET /metrics?format=prometheus&x HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.query_param("missing"), None);

        let req = parse(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query, "");
        assert_eq!(req.query_param("format"), None);
    }

    #[test]
    fn keep_alive_leaves_the_reader_at_the_next_request() {
        let wire = b"POST /a HTTP/1.1\r\ncontent-length: 2\r\n\r\nhiGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&wire[..]);
        let limits = HttpLimits::default();
        assert_eq!(parse_request(&mut reader, &limits).unwrap().path, "/a");
        assert_eq!(parse_request(&mut reader, &limits).unwrap().path, "/b");
        assert_eq!(parse_request(&mut reader, &limits).unwrap_err(), HttpError::ConnectionClosed);
    }

    #[test]
    fn rejects_oversized_declared_body_without_reading_it() {
        let err = parse(b"POST / HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { .. }));
        assert_eq!(err.status(), Some(413));
    }

    #[test]
    fn error_statuses_cover_the_4xx_map() {
        for (wire, status) in [
            (&b"NONSENSE\r\n\r\n"[..], 400),
            (b"PUT / HTTP/1.1\r\n\r\n", 405),
            (b"GET / SPDY/3\r\n\r\n", 505),
            (b"GET / HTTP/1.1\r\nbroken header\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 400),
        ] {
            assert_eq!(parse(wire).unwrap_err().status(), Some(status), "{wire:?}");
        }
    }

    #[test]
    fn truncated_requests_get_no_response() {
        for wire in
            [&b"GET / HTTP/1.1\r\nhost: x"[..], b"POST / HTTP/1.1\r\ncontent-length: 9\r\n\r\nabc"]
        {
            let err = parse(wire).unwrap_err();
            assert_eq!(err, HttpError::Truncated, "{wire:?}");
            assert_eq!(err.status(), None);
        }
    }

    #[test]
    fn response_roundtrips_through_the_client_reader() {
        let resp = Response::json(200, r#"{"ok":true}"#);
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");

        let shed = Response::overloaded("busy");
        let mut wire = Vec::new();
        shed.write_to(&mut wire).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
    }

    #[test]
    fn content_type_is_json_by_default_and_overridable() {
        let json = Response::json(200, "{}");
        let mut wire = Vec::new();
        json.write_to(&mut wire).unwrap();
        assert!(String::from_utf8(wire).unwrap().contains("content-type: application/json\r\n"));

        let prom = Response::text(200, "text/plain; version=0.0.4", "x 1\n");
        assert_eq!(prom.content_type, "text/plain; version=0.0.4");
        let mut wire = Vec::new();
        prom.write_to(&mut wire).unwrap();
        assert!(String::from_utf8(wire)
            .unwrap()
            .contains("content-type: text/plain; version=0.0.4\r\n"));
    }
}
