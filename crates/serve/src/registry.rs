//! The model registry: fitted-model artifacts as named, servable files.
//!
//! A [`ModelRegistry`] is a directory of [`ModelArtifact`] envelopes,
//! one `<id>.artifact.json` per model, where `id` is the content-
//! addressed fit-cache identity (`FitCacheKey::id`). The same directory
//! doubles as the `--model-cache` fit cache (whose entries are bare
//! `<id>.json` fitted models, a disjoint namespace), so a daemon and the
//! offline CLI pointed at one directory share both fits and artifacts.
//!
//! Lookups return typed [`RegistryError`]s that carry an HTTP status:
//! a missing model is 404, a schema-skewed artifact (written by an
//! incompatible build) is 409 with both versions named, and a corrupt
//! file is 500 — never a panic, never a misread payload.
//!
//! ## Versioned lineage
//!
//! Streaming ingest re-fits a session's model as chunks arrive; each
//! re-fit is stored via [`ModelRegistry::put_version`] as
//! `<id>-v<fit_seq>.artifact.json` *plus* a latest pointer at the bare
//! `<id>.artifact.json`, so `GET /models/<id>` always serves the newest
//! fit while `GET /models/<id>/versions` walks the lineage. The
//! directory can be capped ([`ModelRegistry::with_byte_cap`]): past the
//! cap, least-recently-used *version* files are evicted (counter
//! `registry.evicted`) — never a latest pointer, never the newest
//! version of a lineage, and never a version currently pinned by a
//! [`PinGuard`] (replays pin the version they resolve to).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use ibox::{ArtifactError, ModelArtifact, ARTIFACT_FILE_SUFFIX};

/// Why a registry lookup failed; [`RegistryError::status`] maps each
/// case onto the HTTP status the daemon answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// `id` contains characters that could escape the registry dir.
    InvalidId(String),
    /// No artifact with this id.
    NotFound(String),
    /// The artifact file exists but failed to load (I/O, parse, or
    /// schema skew — see [`ArtifactError`]).
    Artifact(ArtifactError),
}

impl RegistryError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            RegistryError::InvalidId(_) => 400,
            RegistryError::NotFound(_) => 404,
            RegistryError::Artifact(ArtifactError::SchemaMismatch { .. }) => 409,
            RegistryError::Artifact(_) => 500,
        }
    }
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::InvalidId(id) => write!(f, "invalid model id {id:?}"),
            RegistryError::NotFound(id) => write!(f, "no model {id:?} in the registry"),
            RegistryError::Artifact(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One row of `GET /models`: the envelope minus the model payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSummary {
    /// Registry id (the content-addressed fit identity).
    pub id: String,
    /// Model-kind display name.
    pub kind: String,
    /// Name of the trace the model was fitted on.
    pub fitted_on: String,
    /// Config hash of the producing `ModelKind`.
    pub config_hash: String,
    /// Artifact envelope schema version.
    pub schema: u32,
}

/// One row of `GET /models/{id}/versions`: a lineage entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionSummary {
    /// Full registry id of this version (`<id>-v<fit_seq>`).
    pub version: String,
    /// 1-based fit counter within the lineage.
    pub fit_seq: u64,
    /// The version this fit superseded (`None` for the first fit).
    pub parent: Option<String>,
    /// FNV digest of the trace this version was fitted on.
    pub trace_digest: Option<String>,
    /// Model-kind display name.
    pub kind: String,
}

/// Recency + pin bookkeeping for eviction (in-memory; recency resets on
/// restart, which only makes eviction order start from file order).
struct RegState {
    pins: HashMap<String, usize>,
    last_use: HashMap<String, u64>,
    tick: u64,
}

/// Holds a version pinned (un-evictable) for the guard's lifetime —
/// taken by `/replay` so the version it resolved to cannot be evicted
/// out from under the simulation.
pub struct PinGuard<'a> {
    reg: &'a ModelRegistry,
    id: String,
}

impl PinGuard<'_> {
    /// The pinned registry id.
    pub fn id(&self) -> &str {
        &self.id
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.reg.state_lock();
        if let Some(n) = state.pins.get_mut(&self.id) {
            *n -= 1;
            if *n == 0 {
                state.pins.remove(&self.id);
            }
        }
    }
}

/// Split `<base>-v<seq>` version ids; `None` for plain ids.
pub fn split_version(id: &str) -> Option<(&str, u64)> {
    let (base, seq) = id.rsplit_once("-v")?;
    if base.is_empty() || seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    seq.parse().ok().map(|n| (base, n))
}

/// A directory of model artifacts, addressed by id.
pub struct ModelRegistry {
    dir: PathBuf,
    byte_cap: u64,
    state: Mutex<RegState>,
}

impl ModelRegistry {
    /// Open (creating if missing) the registry at `dir`. Also compacts:
    /// temp files abandoned by a crashed writer are removed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create model registry dir {}: {e}", dir.display()))?;
        let reg = Self {
            dir,
            byte_cap: u64::MAX,
            state: Mutex::new(RegState { pins: HashMap::new(), last_use: HashMap::new(), tick: 0 }),
        };
        reg.compact();
        Ok(reg)
    }

    /// Cap the total bytes of artifact envelopes on disk; past the cap,
    /// LRU *version* files are evicted on `put_version`. `0` keeps the
    /// registry unbounded.
    pub fn with_byte_cap(mut self, cap_bytes: u64) -> Self {
        self.byte_cap = if cap_bytes == 0 { u64::MAX } else { cap_bytes };
        self
    }

    fn state_lock(&self) -> std::sync::MutexGuard<'_, RegState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn touch(&self, id: &str) {
        let mut state = self.state_lock();
        state.tick += 1;
        let tick = state.tick;
        state.last_use.insert(id.to_string(), tick);
    }

    /// Pin `id` against eviction for the guard's lifetime.
    pub fn pin(&self, id: &str) -> PinGuard<'_> {
        *self.state_lock().pins.entry(id.to_string()).or_insert(0) += 1;
        PinGuard { reg: self, id: id.to_string() }
    }

    /// Remove leftovers a crashed writer may have abandoned (`.<id>.tmp-*`
    /// files). Safe against live writers in *this* process: writers
    /// rename away their temp file before `compact` could see a stale one
    /// for longer than one put.
    pub fn compact(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with('.')
                && name.contains(".tmp-")
                && std::fs::remove_file(entry.path()).is_ok()
            {
                ibox_obs::global().counter("registry.compacted").inc();
            }
        }
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn validate(id: &str) -> Result<(), RegistryError> {
        let ok = !id.is_empty()
            && id.len() <= 128
            && id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            && !id.starts_with('-');
        if ok {
            Ok(())
        } else {
            let shown: String = id.chars().take(64).collect();
            Err(RegistryError::InvalidId(shown))
        }
    }

    fn path_of(&self, id: &str) -> PathBuf {
        ModelArtifact::registry_path(&self.dir, id)
    }

    /// Whether an artifact with this id exists (without loading it).
    pub fn contains(&self, id: &str) -> bool {
        Self::validate(id).is_ok() && self.path_of(id).is_file()
    }

    /// Load the artifact named `id`.
    pub fn get(&self, id: &str) -> Result<ModelArtifact, RegistryError> {
        Self::validate(id)?;
        let path = self.path_of(id);
        if !path.is_file() {
            return Err(RegistryError::NotFound(id.to_string()));
        }
        self.touch(id);
        ModelArtifact::load(&path).map_err(RegistryError::Artifact)
    }

    /// Store `artifact` under `id`, atomically (write-then-rename), so a
    /// concurrent [`get`](Self::get) sees either nothing or the complete
    /// file.
    pub fn put(&self, id: &str, artifact: &ModelArtifact) -> Result<(), RegistryError> {
        Self::validate(id)?;
        let path = self.path_of(id);
        let tmp = self.dir.join(format!(".{id}.tmp-{}", std::process::id()));
        let write =
            std::fs::write(&tmp, artifact.to_json()).and_then(|()| std::fs::rename(&tmp, &path));
        write.map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            RegistryError::Artifact(ArtifactError::Io { path, detail: e.to_string() })
        })?;
        self.touch(id);
        Ok(())
    }

    /// Store one lineage step: the artifact lands at
    /// `<id>-v<fit_seq>.artifact.json` *and* replaces the latest pointer
    /// `<id>.artifact.json`, then the byte cap is enforced. Returns the
    /// version id. The artifact must carry `fit_seq` lineage
    /// ([`ModelArtifact::with_lineage`]).
    pub fn put_version(&self, id: &str, artifact: &ModelArtifact) -> Result<String, RegistryError> {
        Self::validate(id)?;
        let Some(fit_seq) = artifact.fit_seq else {
            return Err(RegistryError::InvalidId(format!("{id} (artifact missing fit_seq)")));
        };
        let version = format!("{id}-v{fit_seq}");
        self.put(&version, artifact)?;
        self.put(id, artifact)?;
        self.enforce_byte_cap();
        Ok(version)
    }

    /// The lineage of `id`, oldest first. `NotFound` only when neither a
    /// latest pointer nor any version exists.
    pub fn versions(&self, id: &str) -> Result<Vec<VersionSummary>, RegistryError> {
        Self::validate(id)?;
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return Ok(out) };
        let prefix = format!("{id}-v");
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(vid) = name.strip_suffix(ARTIFACT_FILE_SUFFIX) else { continue };
            let Some((base, fit_seq)) = split_version(vid) else { continue };
            if base != id {
                continue;
            }
            debug_assert!(vid.starts_with(&prefix));
            match ModelArtifact::load(&entry.path()) {
                Ok(a) => out.push(VersionSummary {
                    version: vid.to_string(),
                    fit_seq,
                    parent: a.parent,
                    trace_digest: a.trace_digest,
                    kind: a.kind,
                }),
                Err(e) => ibox_obs::warn!("registry: skipping version {name}: {e}"),
            }
        }
        if out.is_empty() && !self.contains(id) {
            return Err(RegistryError::NotFound(id.to_string()));
        }
        out.sort_by_key(|v| v.fit_seq);
        Ok(out)
    }

    /// The newest on-disk version id of `id`, if the lineage has any.
    /// Scans file names only — cheap enough for the replay hot path.
    pub fn latest_version(&self, id: &str) -> Option<String> {
        let entries = std::fs::read_dir(&self.dir).ok()?;
        let mut best: Option<u64> = None;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(vid) = name.strip_suffix(ARTIFACT_FILE_SUFFIX) else { continue };
            match split_version(vid) {
                Some((base, seq)) if base == id => best = Some(best.unwrap_or(0).max(seq)),
                _ => {}
            }
        }
        best.map(|seq| format!("{id}-v{seq}"))
    }

    /// Total bytes of artifact envelopes on disk.
    pub fn artifact_bytes(&self) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return 0 };
        entries
            .flatten()
            .filter(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(ARTIFACT_FILE_SUFFIX)))
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    /// Evict least-recently-used version files until the artifact bytes
    /// fit the cap. Never evicted: latest pointers (bare ids), the
    /// newest version of any lineage, and pinned versions. If nothing
    /// else is evictable the registry is allowed to exceed the cap.
    fn enforce_byte_cap(&self) {
        if self.byte_cap == u64::MAX {
            return;
        }
        let mut total = self.artifact_bytes();
        if total <= self.byte_cap {
            return;
        }
        // Version files on disk, with sizes; newest-of-lineage computed
        // over this scan so it stays correct as files are removed.
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return };
        let mut files: Vec<(String, u64, u64)> = Vec::new(); // (vid, seq, size)
        let mut newest: HashMap<String, u64> = HashMap::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(vid) = name.strip_suffix(ARTIFACT_FILE_SUFFIX) else { continue };
            let Some((base, seq)) = split_version(vid) else { continue };
            let size = entry.metadata().map(|m| m.len()).unwrap_or(0);
            let n = newest.entry(base.to_string()).or_insert(0);
            *n = (*n).max(seq);
            files.push((vid.to_string(), seq, size));
        }
        let state = self.state_lock();
        // LRU first; never-used files (tick 0) go before used ones, ties
        // broken by version id for determinism.
        files.sort_by(|a, b| {
            let (ta, tb) = (
                state.last_use.get(&a.0).copied().unwrap_or(0),
                state.last_use.get(&b.0).copied().unwrap_or(0),
            );
            ta.cmp(&tb).then_with(|| a.0.cmp(&b.0))
        });
        for (vid, seq, size) in files {
            if total <= self.byte_cap {
                break;
            }
            let base_newest =
                split_version(&vid).and_then(|(base, _)| newest.get(base)).copied().unwrap_or(0);
            if seq == base_newest || state.pins.contains_key(&vid) {
                continue;
            }
            if std::fs::remove_file(self.path_of(&vid)).is_ok() {
                total = total.saturating_sub(size);
                ibox_obs::global().counter("registry.evicted").inc();
                ibox_obs::info!("registry: evicted version {vid} ({size} bytes)");
            }
        }
    }

    /// Summaries of every loadable artifact, sorted by id. Files that are
    /// not artifact envelopes (e.g. raw fit-cache entries sharing the
    /// directory) are skipped; envelopes that fail to load are skipped
    /// with a warning rather than failing the whole listing.
    pub fn list(&self) -> Vec<ModelSummary> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return Vec::new() };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name.strip_suffix(ARTIFACT_FILE_SUFFIX) else { continue };
            if split_version(id).is_some() {
                continue; // lineage entries list under /models/{id}/versions
            }
            match self.get(id) {
                Ok(artifact) => out.push(ModelSummary {
                    id: id.to_string(),
                    kind: artifact.kind,
                    fitted_on: artifact.fitted_on,
                    config_hash: artifact.config_hash,
                    schema: artifact.schema,
                }),
                Err(e) => ibox_obs::warn!("registry: skipping {name}: {e}"),
            }
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibox::ModelKind;
    use ibox_sim::SimTime;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ibox_registry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> ModelArtifact {
        let train = ibox_testbed::run_protocol(
            &ibox_testbed::Profile::Ethernet
                .builder()
                .seed(11)
                .duration(SimTime::from_secs(3))
                .sample(),
            "cubic",
            SimTime::from_secs(3),
            11,
        );
        let kind = ModelKind::IBoxNet;
        ModelArtifact::new(&kind, ibox::fit_model(&kind, &train))
    }

    #[test]
    fn put_get_list_roundtrip() {
        let dir = tmpdir("roundtrip");
        let reg = ModelRegistry::open(&dir).unwrap();
        assert!(reg.list().is_empty());
        let artifact = sample();
        reg.put("fit-0011aabb", &artifact).unwrap();
        assert!(reg.contains("fit-0011aabb"));
        let back = reg.get("fit-0011aabb").unwrap();
        assert_eq!(back.to_json(), artifact.to_json());
        let listed = reg.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].id, "fit-0011aabb");
        assert_eq!(listed[0].kind, "iBoxNet");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_invalid_ids_map_to_http_statuses() {
        let dir = tmpdir("errors");
        let reg = ModelRegistry::open(&dir).unwrap();
        let missing = reg.get("fit-ffffffffffffffff").unwrap_err();
        assert!(matches!(missing, RegistryError::NotFound(_)));
        assert_eq!(missing.status(), 404);
        for bad in ["", "../escape", "a/b", "x.y", &"a".repeat(200)] {
            let err = reg.get(bad).unwrap_err();
            assert!(matches!(err, RegistryError::InvalidId(_)), "{bad:?}");
            assert_eq!(err.status(), 400);
            assert!(!reg.contains(bad));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_skew_is_a_conflict_and_junk_is_skipped_in_listings() {
        let dir = tmpdir("skew");
        let reg = ModelRegistry::open(&dir).unwrap();
        reg.put("fit-good", &sample()).unwrap();

        let skewed = sample().to_json().replacen(
            &format!("\"schema\":{}", ibox::MODEL_ARTIFACT_SCHEMA),
            "\"schema\":42",
            1,
        );
        std::fs::write(dir.join(format!("fit-skew{ARTIFACT_FILE_SUFFIX}")), skewed).unwrap();
        let err = reg.get("fit-skew").unwrap_err();
        assert_eq!(err.status(), 409, "{err}");
        assert!(err.to_string().contains("42"), "{err}");

        // A raw fit-cache entry in the same dir is not listed as a model.
        std::fs::write(dir.join("fit-cacheentry.json"), "{\"IBoxNet\":{}}").unwrap();
        let ids: Vec<_> = reg.list().into_iter().map(|s| s.id).collect();
        assert_eq!(ids, vec!["fit-good"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn versioned(seq: u64) -> ModelArtifact {
        let parent = (seq > 1).then(|| format!("sess-v{}", seq - 1));
        sample().with_lineage(parent, "fnv1a:0011223344556677".to_string(), seq)
    }

    #[test]
    fn put_version_builds_lineage_and_latest_pointer() {
        let dir = tmpdir("lineage");
        let reg = ModelRegistry::open(&dir).unwrap();
        for seq in 1..=3 {
            let vid = reg.put_version("sess", &versioned(seq)).unwrap();
            assert_eq!(vid, format!("sess-v{seq}"));
        }
        // Latest pointer serves the newest fit.
        assert_eq!(reg.get("sess").unwrap().fit_seq, Some(3));
        let lineage = reg.versions("sess").unwrap();
        assert_eq!(
            lineage.iter().map(|v| v.version.as_str()).collect::<Vec<_>>(),
            vec!["sess-v1", "sess-v2", "sess-v3"]
        );
        assert_eq!(lineage[0].parent, None);
        assert_eq!(lineage[2].parent.as_deref(), Some("sess-v2"));
        assert_eq!(reg.latest_version("sess").as_deref(), Some("sess-v3"));
        // Version files do not clutter the one-row-per-model listing.
        let ids: Vec<_> = reg.list().into_iter().map(|s| s.id).collect();
        assert_eq!(ids, vec!["sess"]);
        // Unknown lineage is a typed 404; a version id itself resolves.
        assert_eq!(reg.versions("ghost").unwrap_err().status(), 404);
        assert!(reg.get("sess-v2").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Acceptance: the byte cap evicts LRU versions, but never a pinned
    /// version, never the newest of a lineage, never the latest pointer.
    #[test]
    fn byte_cap_evicts_lru_versions_but_never_pinned_or_newest() {
        let dir = tmpdir("evict");
        let size = versioned(1).to_json().len() as u64;
        // Room for the latest pointer plus ~2.5 versions.
        let reg = ModelRegistry::open(&dir).unwrap().with_byte_cap(size * 7 / 2);
        for seq in 1..=3 {
            reg.put_version("sess", &versioned(seq)).unwrap();
        }
        // v1 (LRU) was evicted to fit the cap; the rest survive.
        assert!(!reg.contains("sess-v1"), "LRU version must be evicted");
        assert!(reg.contains("sess-v2") && reg.contains("sess-v3") && reg.contains("sess"));
        assert!(reg.artifact_bytes() <= size * 7 / 2);

        let guard = reg.pin("sess-v2");
        reg.put_version("sess", &versioned(4)).unwrap();
        // v2 is pinned: eviction must skip it and take v3 instead.
        assert!(reg.contains("sess-v2"), "pinned version must survive eviction");
        assert!(!reg.contains("sess-v3"));
        assert!(reg.contains("sess-v4"), "newest version is never evicted");
        drop(guard);

        reg.put_version("sess", &versioned(5)).unwrap();
        // Unpinned now: v2 goes first (LRU), newest v5 + pointer stay.
        assert!(!reg.contains("sess-v2"));
        assert!(reg.contains("sess-v5") && reg.contains("sess"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_compacts_stale_tmp_files() {
        let dir = tmpdir("compact");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(".sess.tmp-99999"), "{}").unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        assert!(!dir.join(".sess.tmp-99999").exists(), "open() compacts stale tmp files");
        assert_eq!(reg.artifact_bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
