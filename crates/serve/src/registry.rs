//! The model registry: fitted-model artifacts as named, servable files.
//!
//! A [`ModelRegistry`] is a directory of [`ModelArtifact`] envelopes,
//! one `<id>.artifact.json` per model, where `id` is the content-
//! addressed fit-cache identity (`FitCacheKey::id`). The same directory
//! doubles as the `--model-cache` fit cache (whose entries are bare
//! `<id>.json` fitted models, a disjoint namespace), so a daemon and the
//! offline CLI pointed at one directory share both fits and artifacts.
//!
//! Lookups return typed [`RegistryError`]s that carry an HTTP status:
//! a missing model is 404, a schema-skewed artifact (written by an
//! incompatible build) is 409 with both versions named, and a corrupt
//! file is 500 — never a panic, never a misread payload.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use ibox::{ArtifactError, ModelArtifact, ARTIFACT_FILE_SUFFIX};

/// Why a registry lookup failed; [`RegistryError::status`] maps each
/// case onto the HTTP status the daemon answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// `id` contains characters that could escape the registry dir.
    InvalidId(String),
    /// No artifact with this id.
    NotFound(String),
    /// The artifact file exists but failed to load (I/O, parse, or
    /// schema skew — see [`ArtifactError`]).
    Artifact(ArtifactError),
}

impl RegistryError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            RegistryError::InvalidId(_) => 400,
            RegistryError::NotFound(_) => 404,
            RegistryError::Artifact(ArtifactError::SchemaMismatch { .. }) => 409,
            RegistryError::Artifact(_) => 500,
        }
    }
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::InvalidId(id) => write!(f, "invalid model id {id:?}"),
            RegistryError::NotFound(id) => write!(f, "no model {id:?} in the registry"),
            RegistryError::Artifact(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One row of `GET /models`: the envelope minus the model payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSummary {
    /// Registry id (the content-addressed fit identity).
    pub id: String,
    /// Model-kind display name.
    pub kind: String,
    /// Name of the trace the model was fitted on.
    pub fitted_on: String,
    /// Config hash of the producing `ModelKind`.
    pub config_hash: String,
    /// Artifact envelope schema version.
    pub schema: u32,
}

/// A directory of model artifacts, addressed by id.
pub struct ModelRegistry {
    dir: PathBuf,
}

impl ModelRegistry {
    /// Open (creating if missing) the registry at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create model registry dir {}: {e}", dir.display()))?;
        Ok(Self { dir })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn validate(id: &str) -> Result<(), RegistryError> {
        let ok = !id.is_empty()
            && id.len() <= 128
            && id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            && !id.starts_with('-');
        if ok {
            Ok(())
        } else {
            let shown: String = id.chars().take(64).collect();
            Err(RegistryError::InvalidId(shown))
        }
    }

    fn path_of(&self, id: &str) -> PathBuf {
        ModelArtifact::registry_path(&self.dir, id)
    }

    /// Whether an artifact with this id exists (without loading it).
    pub fn contains(&self, id: &str) -> bool {
        Self::validate(id).is_ok() && self.path_of(id).is_file()
    }

    /// Load the artifact named `id`.
    pub fn get(&self, id: &str) -> Result<ModelArtifact, RegistryError> {
        Self::validate(id)?;
        let path = self.path_of(id);
        if !path.is_file() {
            return Err(RegistryError::NotFound(id.to_string()));
        }
        ModelArtifact::load(&path).map_err(RegistryError::Artifact)
    }

    /// Store `artifact` under `id`, atomically (write-then-rename), so a
    /// concurrent [`get`](Self::get) sees either nothing or the complete
    /// file.
    pub fn put(&self, id: &str, artifact: &ModelArtifact) -> Result<(), RegistryError> {
        Self::validate(id)?;
        let path = self.path_of(id);
        let tmp = self.dir.join(format!(".{id}.tmp-{}", std::process::id()));
        let write =
            std::fs::write(&tmp, artifact.to_json()).and_then(|()| std::fs::rename(&tmp, &path));
        write.map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            RegistryError::Artifact(ArtifactError::Io { path, detail: e.to_string() })
        })
    }

    /// Summaries of every loadable artifact, sorted by id. Files that are
    /// not artifact envelopes (e.g. raw fit-cache entries sharing the
    /// directory) are skipped; envelopes that fail to load are skipped
    /// with a warning rather than failing the whole listing.
    pub fn list(&self) -> Vec<ModelSummary> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return Vec::new() };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name.strip_suffix(ARTIFACT_FILE_SUFFIX) else { continue };
            match self.get(id) {
                Ok(artifact) => out.push(ModelSummary {
                    id: id.to_string(),
                    kind: artifact.kind,
                    fitted_on: artifact.fitted_on,
                    config_hash: artifact.config_hash,
                    schema: artifact.schema,
                }),
                Err(e) => ibox_obs::warn!("registry: skipping {name}: {e}"),
            }
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibox::ModelKind;
    use ibox_sim::SimTime;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ibox_registry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> ModelArtifact {
        let train = ibox_testbed::run_protocol(
            &ibox_testbed::Profile::Ethernet
                .builder()
                .seed(11)
                .duration(SimTime::from_secs(3))
                .sample(),
            "cubic",
            SimTime::from_secs(3),
            11,
        );
        let kind = ModelKind::IBoxNet;
        ModelArtifact::new(&kind, ibox::fit_model(&kind, &train))
    }

    #[test]
    fn put_get_list_roundtrip() {
        let dir = tmpdir("roundtrip");
        let reg = ModelRegistry::open(&dir).unwrap();
        assert!(reg.list().is_empty());
        let artifact = sample();
        reg.put("fit-0011aabb", &artifact).unwrap();
        assert!(reg.contains("fit-0011aabb"));
        let back = reg.get("fit-0011aabb").unwrap();
        assert_eq!(back.to_json(), artifact.to_json());
        let listed = reg.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].id, "fit-0011aabb");
        assert_eq!(listed[0].kind, "iBoxNet");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_invalid_ids_map_to_http_statuses() {
        let dir = tmpdir("errors");
        let reg = ModelRegistry::open(&dir).unwrap();
        let missing = reg.get("fit-ffffffffffffffff").unwrap_err();
        assert!(matches!(missing, RegistryError::NotFound(_)));
        assert_eq!(missing.status(), 404);
        for bad in ["", "../escape", "a/b", "x.y", &"a".repeat(200)] {
            let err = reg.get(bad).unwrap_err();
            assert!(matches!(err, RegistryError::InvalidId(_)), "{bad:?}");
            assert_eq!(err.status(), 400);
            assert!(!reg.contains(bad));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_skew_is_a_conflict_and_junk_is_skipped_in_listings() {
        let dir = tmpdir("skew");
        let reg = ModelRegistry::open(&dir).unwrap();
        reg.put("fit-good", &sample()).unwrap();

        let skewed = sample().to_json().replacen(
            &format!("\"schema\":{}", ibox::MODEL_ARTIFACT_SCHEMA),
            "\"schema\":42",
            1,
        );
        std::fs::write(dir.join(format!("fit-skew{ARTIFACT_FILE_SUFFIX}")), skewed).unwrap();
        let err = reg.get("fit-skew").unwrap_err();
        assert_eq!(err.status(), 409, "{err}");
        assert!(err.to_string().contains("42"), "{err}");

        // A raw fit-cache entry in the same dir is not listed as a model.
        std::fs::write(dir.join("fit-cacheentry.json"), "{\"IBoxNet\":{}}").unwrap();
        let ids: Vec<_> = reg.list().into_iter().map(|s| s.id).collect();
        assert_eq!(ids, vec!["fit-good"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
