//! # ibox-serve
//!
//! A zero-dependency model-serving daemon: the online tier over the
//! fit/replay split of `ibox` (the `PathModel` trait, `ModelArtifact`
//! envelopes, and the content-addressed `FitCache`). Where the CLI is
//! one fit or replay per process, the daemon keeps fitted models warm
//! and answers counterfactual queries over HTTP — the "fast query
//! backend" role the paper's counterfactual-testing vision implies.
//!
//! ## Endpoints
//!
//! | Endpoint | Semantics |
//! |---|---|
//! | `POST /fit` | Fit a model on an inline trace or a synth spec. Keyed by the content-addressed fit identity; single-flight through the [`ibox::FitCache`]. Async by default (`202` + job id), synchronous with `"wait": true`. |
//! | `POST /replay` | Replay a protocol through a registered model. The body is **byte-identical** to what offline `ibox replay` writes. |
//! | `POST /batch` | Run a `BatchSpec` over the runner pool; answers with the jobs-invariant `BatchResult` JSON. |
//! | `POST /traces/<id>/append` | Append one packet-record chunk to a streaming ingest session (creating it on first append). Out-of-order chunks buffer, duplicates are idempotent, budgets answer `413`. Returns the live watermark estimate; at the configured cadence, re-fits and registers a new model version. |
//! | `POST /traces/<id>/finalize` | Seal a session, fit the concatenated trace (byte-identical to a one-shot `/fit` of the same records), register it as the next lineage version. |
//! | `GET /ingest/sessions` | List ingest sessions (typed `404`s for unknown ids on the singular route). |
//! | `GET /ingest/sessions/<id>` | One session's status: offsets, chunks, bytes, sealed, watermark. |
//! | `GET /models` | List registered artifacts (id, kind, provenance). |
//! | `GET /models/<id>` | Fetch one artifact envelope (the *latest* version for ingest-backed lineages); `202` while its fit is pending, typed `404`/`409`/`500` errors otherwise. |
//! | `GET /models/<id>/versions` | The model's lineage: `fit_seq`, `parent`, `trace_digest` per version. |
//! | `GET /metrics` | Obs registry snapshot as JSON; `?format=prometheus` for text exposition (content type `text/plain; version=0.0.4`). |
//! | `GET /trace/<id>` | One request's causal span tree (see below); `?format=chrome` for Perfetto-loadable Chrome trace-event JSON. |
//! | `GET /traces` | Bounded most-recent-first listing of traces still in the ring. |
//! | `GET /healthz` | Liveness. |
//! | `POST /shutdown` | Begin graceful drain. |
//!
//! ## Tracing
//!
//! Every non-observability request runs under a causal trace
//! ([`ibox_obs::trace`]): a `request.<endpoint>` root span with the
//! fit-cache / model-fit / batch / per-job child spans recorded beneath
//! it, flushed to the process-global bounded ring when the response is
//! written. The trace ID is taken from the `x-ibox-trace-id` header
//! (16-hex-digit, or any token — non-hex IDs hash deterministically) or
//! server-assigned; either way `GET /trace/<same-id>` returns the tree.
//! Set `IBOX_TRACE=off` in the daemon's environment to disable capture.
//!
//! ## Robustness invariants
//!
//! * **Bounded everything**: the accept queue holds at most
//!   `max_inflight` connections (beyond that: `503 Retry-After`,
//!   counter `serve.shed`), background fits are capped, request sizes
//!   are limited ([`HttpLimits`]). Overload degrades into fast
//!   rejections, never unbounded memory or deadlock.
//! * **Typed failure**: hostile bytes become 4xx via [`HttpError`]
//!   (property-tested), schema-skewed artifacts become `409`s via
//!   [`RegistryError`], and a panicking handler becomes a `500` —
//!   the daemon itself never dies on bad input.
//! * **Graceful drain**: shutdown stops the listener, finishes queued
//!   and in-flight requests, and joins background fit threads.
//! * **Determinism**: `/replay` and `/batch` answer with the same bytes
//!   the offline CLI produces, at any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod registry;
pub mod routes;
pub mod server;

pub use http::{
    request_url, request_url_with_headers, HttpClient, HttpError, HttpLimits, Request, Response,
};
pub use registry::{
    split_version, ModelRegistry, ModelSummary, PinGuard, RegistryError, VersionSummary,
};
pub use routes::{App, AppOptions};
pub use server::{ServeConfig, Server, ServerHandle};
