//! Property tests for the HTTP request parser: hostile bytes must come
//! back as typed errors (which the server answers as 4xx), never as a
//! panic, and never as a silently wrong `Request`.

use proptest::prelude::*;

use ibox_serve::http::{parse_request, HttpError, HttpLimits, Request};

/// Parse a byte buffer the way the server does (a `BufRead` over the
/// socket); a slice never blocks, so every test is hang-free by
/// construction — socket-level timeout behaviour is covered in the
/// end-to-end suite.
fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
    parse_request(&mut &bytes[..], &HttpLimits::default())
}

/// Statuses the parser is allowed to produce for bad input. `None`
/// means "no answerable request on the wire" (clean close / truncation).
fn assert_typed(err: &HttpError) {
    match err.status() {
        None => {}
        Some(s) => {
            assert!((400..=599).contains(&s), "parser produced non-error status {s} for {err}")
        }
    }
}

/// Strategy: arbitrary bytes, biased toward ASCII so request-line and
/// header paths actually get exercised (pure noise dies at byte one).
fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        (0u32..256, prop::bool::weighted(0.7)).prop_map(|(b, ascii)| {
            if ascii {
                // printable ASCII plus the framing bytes CR LF SP
                match b % 100 {
                    0 => b'\r',
                    1 => b'\n',
                    2 => b' ',
                    n => (32 + (n % 95)) as u8,
                }
            } else {
                b as u8
            }
        }),
        0..2048,
    )
}

/// Strategy: a syntactically valid POST with random path / body bytes.
fn arb_valid_post() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        prop::collection::vec((0u32..94).prop_map(|c| (33 + c) as u8), 1..64),
        prop::collection::vec((0u32..256).prop_map(|b| b as u8), 0..512),
    )
        .prop_map(|(mut path, body)| {
            // A path must start with '/'; strip bytes that would break
            // the request-line framing.
            path.retain(|b| *b != b' ' && *b != b'\r' && *b != b'\n');
            let mut req =
                format!("POST /{} HTTP/1.1\r\n", String::from_utf8_lossy(&path)).into_bytes();
            req.extend_from_slice(format!("content-length: {}\r\n\r\n", body.len()).as_bytes());
            req.extend_from_slice(&body);
            (req, body)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary bytes never panic the parser, and every failure is a
    /// typed error mapping to a 4xx/5xx (or a clean no-response close).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in arb_bytes()) {
        match parse(&bytes) {
            Ok(req) => {
                // Anything accepted satisfies the parsed invariants.
                prop_assert!(req.method == "GET" || req.method == "POST");
                prop_assert!(req.path.starts_with('/'));
            }
            Err(e) => assert_typed(&e),
        }
    }

    /// Malformed request lines (random tokens, wrong arity, bad
    /// versions) are rejected with a request-line-shaped error.
    #[test]
    fn malformed_request_lines_are_rejected(
        words in prop::collection::vec(
            prop::collection::vec((0u32..94).prop_map(|c| (33 + c) as u8), 1..12),
            0..5,
        ),
    ) {
        let line = words
            .iter()
            .map(|w| String::from_utf8_lossy(w).into_owned())
            .collect::<Vec<_>>()
            .join(" ");
        // Skip the rare draw that is a genuinely valid request line.
        let mut parts = line.split(' ');
        let valid = matches!(parts.next(), Some("GET" | "POST"))
            && parts.next().is_some_and(|p| p.starts_with('/'))
            && parts.next().is_some_and(|v| v.starts_with("HTTP/1."))
            && parts.next().is_none();
        prop_assume!(!valid);
        let bytes = format!("{line}\r\n\r\n").into_bytes();
        let err = parse(&bytes).expect_err("malformed request line must not parse");
        assert_typed(&err);
        prop_assert!(
            matches!(err.status(), Some(400 | 405 | 505) | None),
            "unexpected mapping {err:?} for line {line:?}"
        );
    }

    /// A header line longer than the limit is a 431, regardless of
    /// content — the parser never buffers it whole.
    #[test]
    fn oversized_header_is_431(extra in 1usize..4096) {
        let limits = HttpLimits::default();
        let mut bytes = b"GET / HTTP/1.1\r\nx-big: ".to_vec();
        bytes.extend(std::iter::repeat_n(b'a', limits.max_header_line + extra));
        bytes.extend_from_slice(b"\r\n\r\n");
        let err = parse(&bytes).expect_err("oversized header must not parse");
        prop_assert_eq!(err.status(), Some(431), "{}", err);
    }

    /// A declared body beyond the limit is a 413 — rejected from the
    /// Content-Length header alone, without reading the body.
    #[test]
    fn oversized_body_is_413(extra in 1u64..1_000_000) {
        let limits = HttpLimits::default();
        let declared = limits.max_body as u64 + extra;
        // No body bytes follow: acceptance would hang on read_exact, so
        // a 413 here proves the check precedes the read.
        let bytes = format!("POST /fit HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n");
        let err = parse(bytes.as_bytes()).expect_err("oversized body must not parse");
        prop_assert_eq!(err.status(), Some(413), "{}", err);
    }

    /// Any strict prefix of a valid request parses as a typed error
    /// (truncation), never as a shorter valid request.
    #[test]
    fn truncated_requests_never_parse((req, _body) in arb_valid_post(), cut in 0.0f64..1.0) {
        let full = parse(&req).expect("the untruncated request parses");
        prop_assert_eq!(&full.method, "POST");
        let keep = (req.len() as f64 * cut) as usize;
        prop_assume!(keep < req.len());
        match parse(&req[..keep]) {
            Ok(short) => {
                // Only acceptable if the prefix happens to still frame a
                // complete request — impossible once a body is declared.
                prop_assert_eq!(short.body.len(), full.body.len());
            }
            Err(e) => assert_typed(&e),
        }
    }

    /// Valid POSTs roundtrip: method, path, and body come back exactly.
    #[test]
    fn valid_posts_roundtrip((req, body) in arb_valid_post()) {
        let parsed = parse(&req).expect("valid request parses");
        prop_assert_eq!(parsed.method, "POST");
        prop_assert!(parsed.path.starts_with('/'));
        prop_assert_eq!(parsed.body, body);
    }
}

/// Deterministic spot checks that the proptest strategies may not hit.
#[test]
fn too_many_headers_is_431() {
    let limits = HttpLimits::default();
    let mut bytes = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..=limits.max_headers {
        bytes.extend_from_slice(format!("x-h{i}: v\r\n").as_bytes());
    }
    bytes.extend_from_slice(b"\r\n");
    let err = parse_request(&mut &bytes[..], &limits).expect_err("too many headers");
    assert_eq!(err.status(), Some(431), "{err}");
}

#[test]
fn oversized_request_line_is_414() {
    let limits = HttpLimits::default();
    let mut bytes = b"GET /".to_vec();
    bytes.extend(std::iter::repeat_n(b'a', limits.max_request_line + 1));
    bytes.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let err = parse_request(&mut &bytes[..], &limits).expect_err("oversized request line");
    assert_eq!(err.status(), Some(414), "{err}");
}
