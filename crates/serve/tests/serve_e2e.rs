//! End-to-end tests over a real loopback socket: fit/replay/batch
//! round-trips, byte-identity with the offline replay path, overload
//! shedding, hostile bytes, and graceful drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use ibox::{ModelArtifact, PathModel};
use ibox_serve::{HttpClient, ServeConfig, Server};
use ibox_sim::SimTime;

/// A fresh daemon on an ephemeral port with its own registry dir.
fn start(configure: impl FnOnce(&mut ServeConfig)) -> (Server, PathBuf) {
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ibox-serve-e2e-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServeConfig::new("127.0.0.1:0", &dir);
    config.jobs = 2;
    config.read_timeout = Duration::from_secs(5);
    configure(&mut config);
    (Server::bind(config).expect("bind"), dir)
}

fn client(server: &Server) -> HttpClient {
    HttpClient::connect(&server.addr().to_string(), Duration::from_secs(10)).expect("connect")
}

/// A small fit request over a synthesized trace (fast, deterministic).
fn fit_body(wait: bool) -> Vec<u8> {
    format!(
        r#"{{"model": "IBoxNet", "wait": {wait},
            "synth": {{"profile": "ethernet", "protocol": "cubic", "seed": 7, "duration_s": 3}}}}"#
    )
    .into_bytes()
}

/// A string field off a parsed JSON object (the vendored `Value` has no
/// `as_str`).
fn str_field(v: &serde::Value, key: &str) -> Option<String> {
    match v.get(key) {
        Some(serde::Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// POST /fit with wait=true and return the registered model id.
fn fit_sync(c: &mut HttpClient) -> String {
    let (status, body) = c.request("POST", "/fit", Some(&fit_body(true))).expect("fit");
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{text}");
    let v = serde_json::parse_value(&text).unwrap();
    assert_eq!(str_field(&v, "status").as_deref(), Some("ready"), "{text}");
    str_field(&v, "model").expect("model id")
}

#[test]
fn healthz_metrics_and_unknown_paths() {
    let (server, _dir) = start(|_| {});
    let mut c = client(&server);

    let (status, body) = c.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("\"ok\""));

    // Metrics include the request counters this very connection bumped.
    let (status, body) = c.request("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("serve.requests"));

    let (status, _) = c.request("GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = c.request("POST", "/healthz", None).unwrap();
    assert_eq!(status, 405);

    server.handle().shutdown();
    server.join();
}

#[test]
fn fit_then_replay_matches_offline_simulation_bytes() {
    let (server, dir) = start(|_| {});
    let mut c = client(&server);
    let id = fit_sync(&mut c);

    // The model shows up in the registry listing.
    let (status, body) = c.request("GET", "/models", None).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains(&id));

    // Replay over HTTP...
    let replay = format!(r#"{{"model": "{id}", "protocol": "vegas", "duration_s": 4, "seed": 9}}"#);
    let (status, online) = c.request("POST", "/replay", Some(replay.as_bytes())).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&online));

    // ...must produce exactly the bytes the offline path serializes:
    // load the artifact straight off disk and simulate locally.
    let artifact = ModelArtifact::load(&ModelArtifact::registry_path(&dir, &id)).unwrap();
    let trace = artifact.model.simulate("vegas", SimTime::from_secs_f64(4.0), 9);
    let offline = serde_json::to_string(&trace).unwrap();
    assert_eq!(String::from_utf8(online).unwrap(), offline);

    // A second fit of the same trace is answered "ready" from the
    // registry without refitting.
    let (status, body) = c.request("POST", "/fit", Some(&fit_body(true))).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("ready"));

    server.handle().shutdown();
    server.join();
}

#[test]
fn async_fit_answers_202_then_becomes_ready() {
    let (server, _dir) = start(|_| {});
    let mut c = client(&server);

    let (status, body) = c.request("POST", "/fit", Some(&fit_body(false))).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert!(status == 202 || status == 200, "unexpected fit answer {status}: {text}");
    let v = serde_json::parse_value(&text).unwrap();
    let id = str_field(&v, "model").expect("model id");

    // Poll GET /models/<id> until the artifact lands (202 while pending).
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = c.request("GET", &format!("/models/{id}"), None).unwrap();
        match status {
            200 => {
                assert!(String::from_utf8_lossy(&body).contains("\"schema\""));
                break;
            }
            202 => {
                assert!(std::time::Instant::now() < deadline, "fit never completed");
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("unexpected status {other}: {}", String::from_utf8_lossy(&body)),
        }
    }

    server.handle().shutdown();
    server.join();
}

#[test]
fn concurrent_replays_are_byte_identical() {
    let (server, _dir) = start(|c| c.jobs = 4);
    let mut c = client(&server);
    let id = fit_sync(&mut c);
    let replay = format!(r#"{{"model": "{id}", "protocol": "cubic", "duration_s": 3, "seed": 5}}"#);

    let addr = server.addr().to_string();
    let answers: Vec<Vec<u8>> = std::thread::scope(|s| {
        (0..8)
            .map(|_| {
                let addr = &addr;
                let replay = &replay;
                s.spawn(move || {
                    let mut c = HttpClient::connect(addr, Duration::from_secs(30)).unwrap();
                    let (status, body) =
                        c.request("POST", "/replay", Some(replay.as_bytes())).unwrap();
                    assert_eq!(status, 200);
                    body
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert!(!answers[0].is_empty());
    for a in &answers[1..] {
        assert_eq!(a, &answers[0], "replay must be deterministic across workers");
    }

    server.handle().shutdown();
    server.join();
}

#[test]
fn batch_over_http_is_byte_identical_to_the_offline_runner() {
    let (server, _dir) = start(|_| {});
    let mut c = client(&server);
    let spec = ibox::BatchSpec::builder()
        .run(
            ibox::RunSpec::builder()
                .id("a")
                .synth("ethernet", "cubic", 7)
                .protocol("cubic")
                .duration_s(3.0)
                .seed(1)
                .build()
                .unwrap(),
        )
        .run(
            ibox::RunSpec::builder()
                .id("b")
                .synth("ethernet", "cubic", 7)
                .protocol("vegas")
                .duration_s(3.0)
                .seed(2)
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();

    let (status, body) = c.request("POST", "/batch", Some(spec.to_json().as_bytes())).unwrap();
    let online = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{online}");

    // Same spec through the in-process runner: identical bytes, by the
    // batch layer's jobs-invariance contract.
    let offline =
        ibox::run_batch_with_cache(&spec, 3, &ibox::FitCache::in_memory()).unwrap().to_json();
    assert_eq!(online, offline);

    let (status, _) = c.request("POST", "/batch", Some(b"{not json")).unwrap();
    assert_eq!(status, 400);

    server.handle().shutdown();
    server.join();
}

#[test]
fn overload_sheds_with_503_and_never_hangs() {
    // One worker, one queue slot: concurrent slow-ish requests beyond
    // two must be shed with 503 + Retry-After on the acceptor thread.
    let (server, _dir) = start(|c| {
        c.jobs = 1;
        c.max_inflight = 1;
    });
    let mut warm = client(&server);
    let id = fit_sync(&mut warm);
    drop(warm);

    let addr = server.addr().to_string();
    let replay = format!(r#"{{"model": "{id}", "protocol": "cubic", "duration_s": 3, "seed": 2}}"#);
    let outcomes: Vec<Result<u16, String>> = std::thread::scope(|s| {
        (0..8)
            .map(|_| {
                let addr = &addr;
                let replay = &replay;
                s.spawn(move || {
                    let mut c = HttpClient::connect(addr, Duration::from_secs(60))?;
                    c.request("POST", "/replay", Some(replay.as_bytes())).map(|(s, _)| s)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    let served = outcomes.iter().filter(|o| matches!(o, Ok(200))).count();
    // Every request got SOME deterministic outcome — a status, or a clean
    // connection error when the 503-and-close races the client's send.
    // The barrage returning at all proves it didn't deadlock.
    assert!(served >= 1, "at least one request is served: {outcomes:?}");
    for status in outcomes.iter().flatten() {
        assert!(*status == 200 || *status == 503, "unexpected status {status}");
    }
    // The shed path is asserted server-side: the tests share one process
    // with the server, so the global registry sees its counters.
    let shed = ibox_obs::global().snapshot().counters.get("serve.shed").copied().unwrap_or(0);
    assert!(shed >= 1, "an 8-deep barrage at capacity 2 must shed: {outcomes:?}");

    server.handle().shutdown();
    server.join();
}

#[test]
fn hostile_bytes_get_4xx_not_a_crash() {
    let (server, _dir) = start(|_| {});

    // Raw garbage on the socket → a 400-class answer, connection closed.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(b"EXPLODE /!!! nonsense\r\n\r\n").unwrap();
    let mut answer = String::new();
    let _ = raw.read_to_string(&mut answer);
    assert!(answer.starts_with("HTTP/1.1 4") || answer.starts_with("HTTP/1.1 5"), "{answer}");
    drop(raw);

    // The daemon is still healthy afterwards.
    let mut c = client(&server);
    let (status, _) = c.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);

    // Bad JSON bodies and bad fields are typed 400s.
    let (status, body) = c.request("POST", "/fit", Some(b"\xff\xfe")).unwrap();
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    let (status, body) = c.request("POST", "/replay", Some(b"{}")).unwrap();
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    let (status, body) = c
        .request("POST", "/replay", Some(br#"{"model": "x", "protocol": "warp", "seed": 1}"#))
        .unwrap();
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    let (status, body) = c.request("GET", "/models/no-such-model", None).unwrap();
    assert_eq!(status, 404, "{}", String::from_utf8_lossy(&body));
    let (status, body) = c.request("GET", "/models/..%2fescape", None).unwrap();
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));

    server.handle().shutdown();
    server.join();
}

#[test]
fn truncated_request_is_closed_within_the_read_timeout() {
    let (server, _dir) = start(|c| c.read_timeout = Duration::from_secs(1));

    // Send half a request and stop: the worker must give up at its read
    // timeout and close, not pin the slot forever.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"POST /fit HTTP/1.1\r\ncontent-length: 100\r\n\r\nonly-part").unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let t0 = std::time::Instant::now();
    let mut buf = Vec::new();
    let _ = raw.read_to_end(&mut buf); // returns once the server closes
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "server held a truncated connection too long ({:?})",
        t0.elapsed()
    );

    // And the daemon still serves.
    let mut c = client(&server);
    let (status, _) = c.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);

    server.handle().shutdown();
    server.join();
}

#[test]
fn shutdown_endpoint_drains_gracefully() {
    let (server, _dir) = start(|_| {});
    let mut c = client(&server);
    let (status, body) = c.request("POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("draining"));
    // join() returns: acceptor unblocked, workers drained, fits joined.
    server.join();
}

/// Streaming ingest over HTTP: chunks append (including out of order),
/// the session is visible under `/ingest/sessions`, finalize registers
/// a lineage version, and `/replay` resolves the base id to the pinned
/// newest version — byte-identical to replaying that version directly.
#[test]
fn ingest_append_finalize_replay_roundtrip() {
    let (server, _dir) = start(|c| c.ingest.refit_every_chunks = 2);
    let mut c = client(&server);

    let duration = SimTime::from_secs(2);
    let train = ibox_testbed::run_protocol(
        &ibox_testbed::Profile::Ethernet.builder().seed(7).duration(duration).sample(),
        "cubic",
        duration,
        7,
    );
    let records = train.records();
    let (a, b) = (records.len() / 3, 2 * records.len() / 3);
    let meta = serde_json::to_string(&train.meta).unwrap();
    let chunk = |offset: usize, recs: &[ibox_trace::PacketRecord]| {
        format!(
            r#"{{"offset": {offset}, "model": "IBoxNet", "meta": {meta}, "records": {}}}"#,
            serde_json::to_string(&recs.to_vec()).unwrap()
        )
        .into_bytes()
    };

    // Chunk 3 arrives before chunk 2: buffered, then drained.
    let (status, body) =
        c.request("POST", "/traces/live/append", Some(&chunk(0, &records[..a]))).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{text}");
    let v = serde_json::parse_value(&text).unwrap();
    assert_eq!(str_field(&v, "outcome").as_deref(), Some("accepted"), "{text}");
    assert!(v.get("watermark").is_some(), "first chunk already yields an estimate: {text}");

    let (status, body) =
        c.request("POST", "/traces/live/append", Some(&chunk(b, &records[b..]))).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{text}");
    assert_eq!(
        str_field(&serde_json::parse_value(&text).unwrap(), "outcome").as_deref(),
        Some("buffered"),
        "{text}"
    );

    let (status, body) =
        c.request("POST", "/traces/live/append", Some(&chunk(a, &records[a..b]))).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{text}");
    let v = serde_json::parse_value(&text).unwrap();
    assert_eq!(str_field(&v, "outcome").as_deref(), Some("accepted"), "{text}");
    // The cadence (every 2 chunks) fired on this append and registered
    // a mid-stream version.
    assert_eq!(str_field(&v, "version").as_deref(), Some("live-v1"), "{text}");

    // The session is introspectable under both listing and singular routes.
    let (status, body) = c.request("GET", "/ingest/sessions", None).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("\"live\""));
    let (status, body) = c.request("GET", "/ingest/sessions/live", None).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{text}");
    let v = serde_json::parse_value(&text).unwrap();
    assert_eq!(v.get("chunks").and_then(serde::Value::as_f64), Some(3.0), "{text}");

    // Typed 404s on both trace route families.
    let (status, _) = c.request("GET", "/ingest/sessions/ghost", None).unwrap();
    assert_eq!(status, 404);
    let (status, body) = c.request("GET", "/traces/ghost", None).unwrap();
    assert_eq!(status, 404);
    assert!(String::from_utf8_lossy(&body).contains("/ingest/sessions"));

    // Finalize: seals, fits, registers the next lineage version.
    let (status, body) = c.request("POST", "/traces/live/finalize", Some(b"{}")).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{text}");
    let v = serde_json::parse_value(&text).unwrap();
    assert_eq!(str_field(&v, "version").as_deref(), Some("live-v2"), "{text}");
    assert_eq!(str_field(&v, "status").as_deref(), Some("ready"), "{text}");

    // Appending to a sealed session is a conflict; re-finalizing too.
    let (status, _) =
        c.request("POST", "/traces/live/append", Some(&chunk(0, &records[..a]))).unwrap();
    assert_eq!(status, 409);

    // The latest pointer and the lineage are both served.
    let (status, body) = c.request("GET", "/models/live", None).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"fit_seq\":2"), "{text}");
    assert!(text.contains(&format!("\"trace_digest\":\"{}\"", train.digest())), "{text}");
    let (status, body) = c.request("GET", "/models/live/versions", None).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("live-v1") && text.contains("live-v2"), "{text}");
    assert!(text.contains("\"parent\":\"live-v1\""), "{text}");

    // Replay resolves the base id to the newest version, pinned: the
    // bytes equal an explicit replay of that version.
    let replay = |c: &mut HttpClient, model: &str| {
        let body = format!(r#"{{"model": "{model}", "protocol": "cubic", "duration_s": 2}}"#);
        let (status, bytes) = c.request("POST", "/replay", Some(body.as_bytes())).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&bytes));
        bytes
    };
    assert_eq!(replay(&mut c, "live"), replay(&mut c, "live-v2"));

    server.handle().shutdown();
    server.join();
}

/// Finalize is byte-identical to a one-shot `/fit` of the same records:
/// the fitted model the lineage registers equals the content-addressed
/// artifact a single `/fit` of the full trace produces.
#[test]
fn ingest_finalize_fit_matches_one_shot_fit_bytes() {
    let (server, dir) = start(|_| {});
    let mut c = client(&server);

    let duration = SimTime::from_secs(2);
    let train = ibox_testbed::run_protocol(
        &ibox_testbed::Profile::Ethernet.builder().seed(9).duration(duration).sample(),
        "cubic",
        duration,
        9,
    );
    let records = train.records();
    let mid = records.len() / 2;
    let meta = serde_json::to_string(&train.meta).unwrap();
    for (offset, recs) in [(0, &records[..mid]), (mid, &records[mid..])] {
        let body = format!(
            r#"{{"offset": {offset}, "meta": {meta}, "records": {}}}"#,
            serde_json::to_string(&recs.to_vec()).unwrap()
        );
        let (status, resp) =
            c.request("POST", "/traces/oneshot/append", Some(body.as_bytes())).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    }
    let (status, resp) = c.request("POST", "/traces/oneshot/finalize", Some(b"{}")).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));

    // One-shot fit of the full inline trace.
    let fit = format!(r#"{{"wait": true, "trace": {}}}"#, serde_json::to_string(&train).unwrap());
    let (status, resp) = c.request("POST", "/fit", Some(fit.as_bytes())).unwrap();
    let text = String::from_utf8(resp).unwrap();
    assert_eq!(status, 200, "{text}");
    let fit_id = str_field(&serde_json::parse_value(&text).unwrap(), "model").unwrap();

    let ingested = ModelArtifact::load(&ModelArtifact::registry_path(&dir, "oneshot-v1")).unwrap();
    let oneshot = ModelArtifact::load(&ModelArtifact::registry_path(&dir, &fit_id)).unwrap();
    assert_eq!(
        serde_json::to_string(&ingested.model).unwrap(),
        serde_json::to_string(&oneshot.model).unwrap(),
        "chunked-ingest fit must be byte-identical to the one-shot fit"
    );

    server.handle().shutdown();
    server.join();
}
