//! TCP Reno: classical slow start + AIMD congestion avoidance.

use ibox_sim::{AckEvent, CongestionControl, CongestionSignal, SimTime};

/// TCP Reno (NewReno-style window arithmetic, packets).
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
}

/// Initial window (RFC 6928).
const INITIAL_CWND: f64 = 10.0;
/// Smallest window after any backoff.
const MIN_CWND: f64 = 2.0;

impl Reno {
    /// A fresh Reno sender.
    pub fn new() -> Self {
        Self { cwnd: INITIAL_CWND, ssthresh: f64::INFINITY }
    }

    /// Whether the sender is still in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn on_ack(&mut self, _ack: &AckEvent) {
        if self.in_slow_start() {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
    }

    fn on_congestion(&mut self, _now: SimTime, signal: CongestionSignal) {
        match signal {
            CongestionSignal::Loss => {
                self.ssthresh = (self.cwnd / 2.0).max(MIN_CWND);
                self.cwnd = self.ssthresh;
            }
            CongestionSignal::Timeout => {
                self.ssthresh = (self.cwnd / 2.0).max(MIN_CWND);
                self.cwnd = MIN_CWND;
            }
        }
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::from_millis(now_ms),
            seq: 0,
            rtt: SimTime::from_millis(40),
            acked_bytes: 1400,
            inflight: 0,
        }
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = Reno::new();
        assert!(cc.in_slow_start());
        let w0 = cc.cwnd();
        // One ack per outstanding packet => +1 each => doubles per RTT.
        for _ in 0..(w0 as usize) {
            cc.on_ack(&ack(1));
        }
        assert_eq!(cc.cwnd(), 2.0 * w0);
    }

    #[test]
    fn congestion_avoidance_is_additive() {
        let mut cc = Reno::new();
        cc.on_congestion(SimTime::ZERO, CongestionSignal::Loss); // leave slow start
        let w = cc.cwnd();
        let n = w as usize;
        for _ in 0..n {
            cc.on_ack(&ack(2));
        }
        // Roughly +1 per window of acks.
        assert!((cc.cwnd() - (w + 1.0)).abs() < 0.3, "cwnd = {}", cc.cwnd());
    }

    #[test]
    fn loss_halves_window() {
        let mut cc = Reno::new();
        for _ in 0..54 {
            cc.on_ack(&ack(1));
        }
        let w = cc.cwnd();
        cc.on_congestion(SimTime::ZERO, CongestionSignal::Loss);
        assert_eq!(cc.cwnd(), w / 2.0);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn timeout_collapses_window() {
        let mut cc = Reno::new();
        for _ in 0..54 {
            cc.on_ack(&ack(1));
        }
        cc.on_congestion(SimTime::ZERO, CongestionSignal::Timeout);
        assert_eq!(cc.cwnd(), MIN_CWND);
    }

    #[test]
    fn window_never_collapses_below_minimum() {
        let mut cc = Reno::new();
        for _ in 0..10 {
            cc.on_congestion(SimTime::ZERO, CongestionSignal::Loss);
        }
        assert!(cc.cwnd() >= MIN_CWND);
    }
}
