//! BBR-lite: a simplified model-based (bandwidth × RTT) pacing sender.
//!
//! Pantheon gathers BBR traces alongside Cubic and Vegas, so the testbed
//! supports a rate-based, model-driven sender too. This is a deliberately
//! compact BBR: windowed max bandwidth estimate, windowed min RTT, a
//! ProbeBW gain cycle, pacing at `gain × bw` and a 2×BDP inflight cap.
//! It captures BBR's qualitative behaviour (fills the pipe without filling
//! the buffer; periodic probing) without the full state machine.

use std::collections::VecDeque;

use ibox_sim::{AckEvent, CongestionControl, CongestionSignal, SimTime};

/// ProbeBW pacing-gain cycle (RFC-draft BBRv1 values).
const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Bandwidth filter window.
const BW_WINDOW: SimTime = SimTime(10_000_000_000);
/// Min-RTT filter window.
const RTT_WINDOW: SimTime = SimTime(10_000_000_000);
/// Startup pacing gain (2/ln2).
const STARTUP_GAIN: f64 = 2.885;
/// Conservative floor on the pacing rate, bits per second.
const MIN_RATE: f64 = 64_000.0;

/// A simplified BBR sender.
#[derive(Debug, Clone)]
pub struct BbrLite {
    /// `(time, bw_sample_bps)` history for the windowed max filter.
    bw_samples: VecDeque<(SimTime, f64)>,
    /// `(time, rtt)` history for the windowed min filter.
    rtt_samples: VecDeque<(SimTime, SimTime)>,
    /// Delivered-bytes accounting for bandwidth samples.
    last_ack_time: Option<SimTime>,
    bytes_since_last: u64,
    /// Startup vs ProbeBW.
    in_startup: bool,
    /// Index into the gain cycle and the time it last advanced.
    cycle_idx: usize,
    cycle_advanced: SimTime,
    /// Cached estimates.
    bw_est: f64,
    min_rtt: SimTime,
    packet_size: f64,
}

impl BbrLite {
    /// A fresh BBR-lite sender.
    pub fn new() -> Self {
        Self {
            bw_samples: VecDeque::new(),
            rtt_samples: VecDeque::new(),
            last_ack_time: None,
            bytes_since_last: 0,
            in_startup: true,
            cycle_idx: 0,
            cycle_advanced: SimTime::ZERO,
            bw_est: 1e6, // 1 Mbps prior until samples arrive
            min_rtt: SimTime::from_millis(100),
            packet_size: 1400.0,
        }
    }

    /// Current bottleneck-bandwidth estimate, bits per second.
    pub fn bandwidth_estimate_bps(&self) -> f64 {
        self.bw_est
    }

    /// Current min-RTT estimate.
    pub fn min_rtt_estimate(&self) -> SimTime {
        self.min_rtt
    }

    fn pacing_gain(&self) -> f64 {
        if self.in_startup {
            STARTUP_GAIN
        } else {
            GAIN_CYCLE[self.cycle_idx]
        }
    }
}

impl Default for BbrLite {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for BbrLite {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.packet_size = f64::from(ack.acked_bytes).max(1.0);
        // Bandwidth sample: delivered bytes over the inter-ack interval.
        self.bytes_since_last += u64::from(ack.acked_bytes);
        if let Some(last) = self.last_ack_time {
            let dt = ack.now.saturating_sub(last).as_secs_f64();
            if dt > 1e-6 {
                let sample = self.bytes_since_last as f64 * 8.0 / dt;
                self.bw_samples.push_back((ack.now, sample));
                self.bytes_since_last = 0;
                self.last_ack_time = Some(ack.now);
            }
        } else {
            // First ack: start the interval; its bytes belong to no
            // measured interval yet.
            self.last_ack_time = Some(ack.now);
            self.bytes_since_last = 0;
        }
        // Expire and recompute windowed max bandwidth.
        while let Some(&(t, _)) = self.bw_samples.front() {
            if ack.now.saturating_sub(t) > BW_WINDOW {
                self.bw_samples.pop_front();
            } else {
                break;
            }
        }
        let prev_bw = self.bw_est;
        if let Some(max) = self
            .bw_samples
            .iter()
            .map(|(_, b)| *b)
            .fold(None::<f64>, |m, b| Some(m.map_or(b, |x| x.max(b))))
        {
            self.bw_est = max.max(MIN_RATE);
        }

        // Windowed min RTT.
        self.rtt_samples.push_back((ack.now, ack.rtt));
        while let Some(&(t, _)) = self.rtt_samples.front() {
            if ack.now.saturating_sub(t) > RTT_WINDOW {
                self.rtt_samples.pop_front();
            } else {
                break;
            }
        }
        self.min_rtt =
            self.rtt_samples.iter().map(|(_, r)| *r).min().unwrap_or(SimTime::from_millis(100));

        // Exit startup once bandwidth stops growing (25% over a cycle).
        if self.in_startup && self.bw_samples.len() > 10 && self.bw_est < prev_bw * 1.03 {
            self.in_startup = false;
            self.cycle_advanced = ack.now;
        }

        // Advance the ProbeBW gain cycle once per min RTT.
        if !self.in_startup && ack.now.saturating_sub(self.cycle_advanced) >= self.min_rtt {
            self.cycle_idx = (self.cycle_idx + 1) % GAIN_CYCLE.len();
            self.cycle_advanced = ack.now;
        }
    }

    fn on_congestion(&mut self, _now: SimTime, signal: CongestionSignal) {
        // BBR does not react to isolated losses; a timeout restarts the
        // model from a conservative state.
        if signal == CongestionSignal::Timeout {
            self.in_startup = true;
            self.bw_samples.clear();
            self.bw_est = (self.bw_est * 0.5).max(MIN_RATE);
        }
    }

    fn cwnd(&self) -> f64 {
        // 2×BDP inflight cap, in packets.
        let bdp_bytes = self.bw_est / 8.0 * self.min_rtt.as_secs_f64();
        (2.0 * bdp_bytes / self.packet_size).max(4.0)
    }

    fn pacing_rate_bps(&self) -> Option<f64> {
        Some((self.pacing_gain() * self.bw_est).max(MIN_RATE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64, bytes: u32) -> AckEvent {
        AckEvent {
            now: SimTime::from_millis(now_ms),
            seq: 0,
            rtt: SimTime::from_millis(rtt_ms),
            acked_bytes: bytes,
            inflight: 0,
        }
    }

    #[test]
    fn bandwidth_estimate_converges_to_ack_rate() {
        let mut cc = BbrLite::new();
        // 1400 B acks every 1 ms = 11.2 Mbps.
        for t in 1..2_000u64 {
            cc.on_ack(&ack(t, 40, 1400));
        }
        let bw = cc.bandwidth_estimate_bps();
        assert!((bw - 11.2e6).abs() < 1.5e6, "bw = {bw}");
    }

    #[test]
    fn min_rtt_tracks_window_minimum() {
        let mut cc = BbrLite::new();
        for t in 1..100u64 {
            cc.on_ack(&ack(t, if t == 50 { 20 } else { 60 }, 1400));
        }
        assert_eq!(cc.min_rtt_estimate(), SimTime::from_millis(20));
    }

    #[test]
    fn startup_eventually_exits() {
        let mut cc = BbrLite::new();
        for t in 1..3_000u64 {
            cc.on_ack(&ack(t, 40, 1400));
        }
        assert!(!cc.in_startup, "startup should exit at steady ack rate");
        // Steady-state pacing gain cycles around 1.0.
        let gain = cc.pacing_gain();
        assert!((0.7..=1.3).contains(&gain));
    }

    #[test]
    fn cwnd_is_two_bdp() {
        let mut cc = BbrLite::new();
        for t in 1..2_000u64 {
            cc.on_ack(&ack(t, 40, 1400));
        }
        // BDP = 11.2 Mbps * 40 ms = 56 KB = 40 packets; cap ≈ 80.
        let w = cc.cwnd();
        assert!((60.0..=100.0).contains(&w), "cwnd = {w}");
    }

    #[test]
    fn isolated_loss_is_ignored_timeout_is_not() {
        let mut cc = BbrLite::new();
        for t in 1..1_000u64 {
            cc.on_ack(&ack(t, 40, 1400));
        }
        let bw = cc.bandwidth_estimate_bps();
        cc.on_congestion(SimTime::from_secs(1), CongestionSignal::Loss);
        assert_eq!(cc.bandwidth_estimate_bps(), bw);
        cc.on_congestion(SimTime::from_secs(1), CongestionSignal::Timeout);
        assert!(cc.bandwidth_estimate_bps() < bw);
        assert!(cc.in_startup);
    }

    #[test]
    fn pacing_rate_has_floor() {
        let cc = BbrLite::new();
        assert!(cc.pacing_rate_bps().unwrap() >= MIN_RATE);
    }
}
