//! TCP Vegas — the paper's "treatment" protocol B.
//!
//! Vegas is delay-based: it keeps the number of packets buffered in the
//! network between `alpha` and `beta` by comparing the actual RTT to the
//! propagation-only `baseRTT`. The paper picks it as the counterfactual
//! protocol precisely because "its delay sensitivity makes it quite
//! different from Cubic and hence challenging for iBoxNet" — a model fitted
//! on loss-driven Cubic traces must still predict a delay-driven sender.

use ibox_sim::{AckEvent, CongestionControl, CongestionSignal, SimTime};

/// Lower target on buffered packets (Brakmo & Peterson use 1–3; the common
/// Linux parameters are alpha=2, beta=4).
const ALPHA: f64 = 2.0;
/// Upper target on buffered packets.
const BETA: f64 = 4.0;
/// Initial window.
const INITIAL_CWND: f64 = 4.0;
/// Smallest window after any backoff.
const MIN_CWND: f64 = 2.0;
/// Largest window (a numerical guard for pathological feedback loops;
/// 10k packets ≈ 14 MB in flight, far beyond any path in the experiments).
const MAX_CWND: f64 = 10_000.0;

/// TCP Vegas congestion control (window in packets).
#[derive(Debug, Clone)]
pub struct Vegas {
    cwnd: f64,
    /// Slow start ends permanently once the Vegas brake or any congestion
    /// signal fires (unlike Reno, Vegas never re-enters slow start from
    /// congestion avoidance).
    slow_start: bool,
    /// Minimum RTT observed — the propagation estimate.
    base_rtt: Option<SimTime>,
    /// Minimum RTT observed during the current update epoch.
    epoch_min_rtt: Option<SimTime>,
    /// When the current once-per-RTT update epoch began.
    epoch_start: Option<SimTime>,
}

impl Vegas {
    /// A fresh Vegas sender.
    pub fn new() -> Self {
        Self {
            cwnd: INITIAL_CWND,
            slow_start: true,
            base_rtt: None,
            epoch_min_rtt: None,
            epoch_start: None,
        }
    }

    /// The sender's current propagation-delay estimate.
    pub fn base_rtt(&self) -> Option<SimTime> {
        self.base_rtt
    }

    /// Whether the sender is still in (Vegas's damped) slow start.
    pub fn in_slow_start(&self) -> bool {
        self.slow_start
    }
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &'static str {
        "vegas"
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        // Track the global and per-epoch RTT minima.
        let rtt = ack.rtt;
        self.base_rtt = Some(self.base_rtt.map_or(rtt, |b| b.min(rtt)));
        self.epoch_min_rtt = Some(self.epoch_min_rtt.map_or(rtt, |m| m.min(rtt)));
        let epoch_start = *self.epoch_start.get_or_insert(ack.now);

        // Vegas acts once per RTT.
        let epoch_len = ack.now.saturating_sub(epoch_start);
        if epoch_len < rtt {
            return;
        }
        let base = self.base_rtt.expect("set above").as_secs_f64().max(1e-6);
        let observed = self.epoch_min_rtt.expect("set above").as_secs_f64().max(base);
        self.epoch_start = Some(ack.now);
        self.epoch_min_rtt = None;

        // diff = cwnd * (RTT − baseRTT) / RTT — packets sitting in queues.
        let diff = self.cwnd * (observed - base) / observed;

        if self.slow_start {
            // Slow start with the Vegas brake: exit once the queue builds,
            // shedding the overshoot.
            if diff > ALPHA {
                self.cwnd = (self.cwnd * 0.875).max(MIN_CWND);
                self.slow_start = false;
            } else {
                self.cwnd = (self.cwnd * 2.0).min(MAX_CWND);
            }
            return;
        }

        if diff < ALPHA {
            self.cwnd = (self.cwnd + 1.0).min(MAX_CWND);
        } else if diff > BETA {
            self.cwnd = (self.cwnd - 1.0).max(MIN_CWND);
        }
        // else: within [alpha, beta] — hold.
    }

    fn on_congestion(&mut self, _now: SimTime, signal: CongestionSignal) {
        self.slow_start = false;
        match signal {
            CongestionSignal::Loss => {
                self.cwnd = (self.cwnd * 0.75).max(MIN_CWND);
            }
            CongestionSignal::Timeout => {
                self.cwnd = MIN_CWND;
            }
        }
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::from_millis(now_ms),
            seq: 0,
            rtt: SimTime::from_millis(rtt_ms),
            acked_bytes: 1400,
            inflight: 0,
        }
    }

    /// Drive one ack per ms with the given RTT for `ms` simulated ms.
    fn drive(cc: &mut Vegas, from_ms: u64, to_ms: u64, rtt_ms: u64) {
        for t in from_ms..to_ms {
            cc.on_ack(&ack(t, rtt_ms));
        }
    }

    #[test]
    fn base_rtt_tracks_minimum() {
        let mut cc = Vegas::new();
        cc.on_ack(&ack(1, 50));
        cc.on_ack(&ack(2, 30));
        cc.on_ack(&ack(3, 60));
        assert_eq!(cc.base_rtt(), Some(SimTime::from_millis(30)));
    }

    #[test]
    fn grows_when_queue_is_empty() {
        let mut cc = Vegas::new();
        // Constant RTT = baseRTT: diff = 0 < alpha -> growth.
        drive(&mut cc, 0, 2_000, 40);
        assert!(cc.cwnd() > 10.0, "cwnd = {}", cc.cwnd());
    }

    #[test]
    fn backs_off_when_delay_rises() {
        let mut cc = Vegas::new();
        drive(&mut cc, 0, 2_000, 40);
        let w = cc.cwnd();
        // RTT doubles: diff = cwnd/2 >> beta -> decrease once per RTT.
        drive(&mut cc, 2_000, 4_000, 80);
        assert!(cc.cwnd() < w, "cwnd {} -> {}", w, cc.cwnd());
    }

    #[test]
    fn holds_within_band() {
        // Construct diff within [alpha, beta]: cwnd * (rtt-base)/rtt ∈ band.
        let mut cc = Vegas::new();
        cc.on_ack(&ack(0, 40)); // establish baseRTT = 40 ms
        cc.on_congestion(SimTime::from_millis(1), CongestionSignal::Loss); // leave slow start
        drive(&mut cc, 2, 1_000, 40); // additive growth at zero queueing
        let w0 = cc.cwnd();
        assert!(w0 > 10.0);
        // Choose an RTT so diff ≈ 3 (inside the band): rtt such that
        // w0 * (rtt - 40)/rtt = 3 -> rtt = 40 w0 / (w0 - 3).
        let rtt = (40.0 * w0 / (w0 - 3.0)).round() as u64;
        drive(&mut cc, 1_000, 1_500, rtt);
        let w1 = cc.cwnd();
        drive(&mut cc, 1_500, 2_000, rtt);
        assert!((cc.cwnd() - w1).abs() <= 1.0, "window should hold: {w1} vs {}", cc.cwnd());
    }

    #[test]
    fn loss_backoff_is_gentler_than_reno() {
        let mut cc = Vegas::new();
        drive(&mut cc, 0, 1_000, 40);
        let w = cc.cwnd();
        cc.on_congestion(SimTime::from_secs(1), CongestionSignal::Loss);
        assert!((cc.cwnd() - w * 0.75).abs() < 1e-9);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut cc = Vegas::new();
        drive(&mut cc, 0, 1_000, 40);
        cc.on_congestion(SimTime::from_secs(1), CongestionSignal::Timeout);
        assert_eq!(cc.cwnd(), MIN_CWND);
    }

    #[test]
    fn slow_start_exits_on_queueing() {
        let mut cc = Vegas::new();
        assert!(cc.in_slow_start());
        // Strongly inflated RTTs right away: slow start must end quickly.
        drive(&mut cc, 0, 1_000, 200);
        // base becomes 200; then raise it further.
        drive(&mut cc, 1_000, 3_000, 400);
        assert!(!cc.in_slow_start());
    }
}
