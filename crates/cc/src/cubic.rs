//! TCP Cubic (RFC 8312) — the paper's "control" protocol A.
//!
//! Cubic grows the window as a cubic function of time since the last
//! congestion event, anchored at the pre-loss window `W_max`, with a
//! TCP-friendly (Reno-tracking) lower region. It is the dominant transport
//! in the Internet, which is exactly why iBox fits its models on Cubic
//! traces and then predicts *other* protocols.

use ibox_sim::{AckEvent, CongestionControl, CongestionSignal, SimTime};

/// Cubic scaling constant `C` (RFC 8312 §5).
const C: f64 = 0.4;
/// Multiplicative-decrease factor `beta_cubic` (RFC 8312 §4.5).
const BETA: f64 = 0.7;
/// Initial window (RFC 6928).
const INITIAL_CWND: f64 = 10.0;
/// Smallest window after any backoff.
const MIN_CWND: f64 = 2.0;

/// TCP Cubic congestion control (window in packets).
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window size just before the last reduction.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Cubic inflection offset `K` for the current epoch.
    k: f64,
    /// Reno-tracking estimate for the TCP-friendly region.
    w_est: f64,
    /// Smoothed RTT used for the one-RTT-ahead target.
    srtt: f64,
}

impl Cubic {
    /// A fresh Cubic sender.
    pub fn new() -> Self {
        Self {
            cwnd: INITIAL_CWND,
            ssthresh: f64::INFINITY,
            w_max: INITIAL_CWND,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            srtt: 0.1,
        }
    }

    /// Whether the sender is still in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// The cubic window function `W_cubic(t) = C (t − K)³ + W_max`.
    fn w_cubic(&self, t: f64) -> f64 {
        C * (t - self.k).powi(3) + self.w_max
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        let rtt = ack.rtt.as_secs_f64().max(1e-4);
        self.srtt = 0.875 * self.srtt + 0.125 * rtt;

        if self.in_slow_start() {
            self.cwnd += 1.0;
            return;
        }

        let epoch_start = *self.epoch_start.get_or_insert_with(|| {
            // New congestion-avoidance epoch: anchor the cubic curve.
            self.k = ((self.w_max * (1.0 - BETA) / C).max(0.0)).cbrt();
            self.w_est = self.cwnd;
            ack.now
        });
        let t = (ack.now.saturating_sub(epoch_start)).as_secs_f64();

        // TCP-friendly region (RFC 8312 §4.2): emulate Reno's average rate.
        self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) / self.cwnd;

        let target = self.w_cubic(t + self.srtt);
        if self.w_est > self.cwnd && self.w_est > target {
            self.cwnd = self.w_est;
        } else if target > self.cwnd {
            self.cwnd += (target - self.cwnd) / self.cwnd;
        } else {
            // Max-probing plateau: tiny growth to keep exploring.
            self.cwnd += 0.01 / self.cwnd;
        }
    }

    fn on_congestion(&mut self, _now: SimTime, signal: CongestionSignal) {
        self.w_max = self.cwnd;
        self.epoch_start = None;
        match signal {
            CongestionSignal::Loss => {
                self.cwnd = (self.cwnd * BETA).max(MIN_CWND);
                self.ssthresh = self.cwnd;
            }
            CongestionSignal::Timeout => {
                self.ssthresh = (self.cwnd * BETA).max(MIN_CWND);
                self.cwnd = MIN_CWND;
            }
        }
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_at(ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::from_millis(ms),
            seq: 0,
            rtt: SimTime::from_millis(rtt_ms),
            acked_bytes: 1400,
            inflight: 0,
        }
    }

    #[test]
    fn slow_start_grows_exponentially() {
        let mut cc = Cubic::new();
        for _ in 0..10 {
            cc.on_ack(&ack_at(1, 40));
        }
        assert_eq!(cc.cwnd(), 20.0);
    }

    #[test]
    fn loss_multiplies_by_beta() {
        let mut cc = Cubic::new();
        for _ in 0..90 {
            cc.on_ack(&ack_at(1, 40));
        }
        let w = cc.cwnd();
        cc.on_congestion(SimTime::from_millis(2), CongestionSignal::Loss);
        assert!((cc.cwnd() - w * BETA).abs() < 1e-9);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn cubic_growth_is_concave_then_convex() {
        // After a loss, growth is fast initially (toward W_max), flattens
        // near W_max (t = K), then accelerates.
        let mut cc = Cubic::new();
        for _ in 0..90 {
            cc.on_ack(&ack_at(1, 40));
        }
        cc.on_congestion(SimTime::from_millis(2), CongestionSignal::Loss);
        let w_after_loss = cc.cwnd();
        let w_max = cc.w_max;

        // Drive acks for simulated seconds and sample the window.
        let mut samples = Vec::new();
        for ms in (10..8_000).step_by(10) {
            cc.on_ack(&ack_at(ms, 40));
            samples.push((ms as f64 / 1000.0, cc.cwnd()));
        }
        // Window recovers to W_max and beyond.
        assert!(samples.last().unwrap().1 > w_max);
        // It first grows quickly from the post-loss level...
        let early = samples.iter().find(|(t, _)| *t > 0.5).unwrap().1;
        assert!(early > w_after_loss);
        // ...and near the inflection K the growth per step is smaller than
        // at the start.
        let k = cc.k;
        let near_k_growth = growth_at(&samples, k);
        let early_growth = growth_at(&samples, 0.2);
        assert!(
            near_k_growth < early_growth,
            "plateau at K: {near_k_growth} vs early {early_growth}"
        );
    }

    fn growth_at(samples: &[(f64, f64)], t: f64) -> f64 {
        let i = samples
            .iter()
            .position(|(ts, _)| *ts >= t)
            .unwrap_or(samples.len() - 2)
            .min(samples.len() - 2);
        samples[i + 1].1 - samples[i].1
    }

    #[test]
    fn timeout_collapses_window() {
        let mut cc = Cubic::new();
        for _ in 0..50 {
            cc.on_ack(&ack_at(1, 40));
        }
        cc.on_congestion(SimTime::from_millis(2), CongestionSignal::Timeout);
        assert_eq!(cc.cwnd(), MIN_CWND);
    }

    #[test]
    fn tcp_friendly_region_tracks_reno_at_small_windows() {
        // With a tiny W_max the cubic curve is nearly flat, so the Reno
        // estimate should dominate and the window should keep growing.
        let mut cc = Cubic::new();
        for _ in 0..2 {
            cc.on_ack(&ack_at(1, 40));
        }
        cc.on_congestion(SimTime::from_millis(2), CongestionSignal::Loss);
        let w0 = cc.cwnd();
        for ms in 3..2_000 {
            cc.on_ack(&ack_at(ms, 40));
        }
        assert!(cc.cwnd() > w0 + 1.0, "cwnd = {}", cc.cwnd());
    }
}
