//! # ibox-cc
//!
//! Congestion-control algorithms for the iBox reproduction, implementing
//! [`ibox_sim::CongestionControl`].
//!
//! The paper's experiments need:
//!
//! * [`Cubic`] — the "control" protocol A (most prevalent in the Internet),
//!   used to fit iBox models (RFC 8312 window growth).
//! * [`Vegas`] — the "treatment" protocol B ("its delay sensitivity makes it
//!   quite different from Cubic and hence challenging for iBoxNet").
//! * [`Reno`] — the classical AIMD baseline.
//! * [`BbrLite`] — a model-based pacing sender, exercising the rate-based
//!   path of the flow runtime.
//! * [`RtcController`] — a delay-gradient rate controller in the style of a
//!   real-time-conferencing (GCC-like) control loop; its delay sensitivity
//!   is what *induces* the control-loop bias of §4.2 / Fig. 7 and what the
//!   RTC dataset of Table 1 is made of.
//! * CBR and fixed-window senders live in `ibox_sim::cc` (they are part of
//!   the runtime's test surface).
//!
//! All window arithmetic is in packets, matching the flow runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbr;
pub mod cubic;
pub mod reno;
pub mod rtc;
pub mod vegas;

pub use bbr::BbrLite;
pub use cubic::Cubic;
pub use reno::Reno;
pub use rtc::RtcController;
pub use vegas::Vegas;

use ibox_sim::CongestionControl;

/// Construct a congestion controller by protocol name — the handle the
/// experiment harnesses use to parameterize A/B tests.
///
/// Recognized names: `"cubic"`, `"reno"`, `"vegas"`, `"bbr"`, `"rtc"`.
pub fn by_name(name: &str) -> Option<Box<dyn CongestionControl>> {
    match name {
        "cubic" => Some(Box::new(Cubic::new())),
        "reno" => Some(Box::new(Reno::new())),
        "vegas" => Some(Box::new(Vegas::new())),
        "bbr" => Some(Box::new(BbrLite::new())),
        "rtc" => Some(Box::new(RtcController::default_config())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_knows_all_protocols() {
        for name in ["cubic", "reno", "vegas", "bbr", "rtc"] {
            let cc = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(cc.name(), name);
        }
        assert!(by_name("quic-quac").is_none());
    }
}
