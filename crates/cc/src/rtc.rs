//! A real-time-conferencing (RTC) rate controller.
//!
//! §4.2 and §5.2 of the paper use traces from "a real-time conferencing
//! service" — an application whose sending rate is governed by a
//! delay-sensitive control loop (in real systems: GCC, transport-CC).
//! That loop is the *source* of the control-loop bias iBoxML must cope
//! with: the controller keeps delay low by keeping rate at the edge of
//! capacity, so naive sequence models learn "high rate ⇒ low delay".
//!
//! This controller is a compact delay-gradient AIMD in the GCC mold:
//! multiplicative decrease when estimated queueing delay crosses a
//! threshold, additive (slightly multiplicative) increase while the path
//! looks idle, hard backoff on loss. Rate-based, pacing only.

use ibox_sim::{AckEvent, CongestionControl, CongestionSignal, SimTime};

/// Configuration of the RTC controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtcConfig {
    /// Starting rate, bits per second.
    pub initial_rate_bps: f64,
    /// Floor rate (a call never sends less, e.g. audio).
    pub min_rate_bps: f64,
    /// Ceiling rate (max video quality).
    pub max_rate_bps: f64,
    /// Queueing delay above which the controller backs off.
    pub overuse_threshold: SimTime,
    /// Queueing delay below which the controller probes upward.
    pub underuse_threshold: SimTime,
    /// Multiplicative decrease factor on overuse.
    pub decrease_factor: f64,
    /// Multiplicative increase factor per RTT while underusing.
    pub increase_factor: f64,
}

impl Default for RtcConfig {
    fn default() -> Self {
        Self {
            initial_rate_bps: 1e6,
            min_rate_bps: 150e3,
            max_rate_bps: 20e6,
            overuse_threshold: SimTime::from_millis(25),
            underuse_threshold: SimTime::from_millis(10),
            decrease_factor: 0.85,
            increase_factor: 1.05,
        }
    }
}

/// The delay-gradient RTC rate controller.
#[derive(Debug, Clone)]
pub struct RtcController {
    cfg: RtcConfig,
    rate_bps: f64,
    min_rtt: Option<SimTime>,
    /// Rate decisions happen at most once per RTT.
    last_update: SimTime,
    /// Smoothed queueing-delay estimate.
    smoothed_qdelay: f64,
}

impl RtcController {
    /// A controller with explicit configuration.
    pub fn new(cfg: RtcConfig) -> Self {
        assert!(cfg.min_rate_bps > 0.0, "floor rate must be positive");
        assert!(cfg.max_rate_bps > cfg.min_rate_bps, "rate band inverted");
        assert!(cfg.overuse_threshold > cfg.underuse_threshold, "thresholds inverted");
        assert!((0.0..1.0).contains(&cfg.decrease_factor), "decrease factor out of range");
        assert!(cfg.increase_factor > 1.0, "increase factor must exceed 1");
        Self {
            rate_bps: cfg.initial_rate_bps.clamp(cfg.min_rate_bps, cfg.max_rate_bps),
            cfg,
            min_rtt: None,
            last_update: SimTime::ZERO,
            smoothed_qdelay: 0.0,
        }
    }

    /// A controller with the default (videoconference-like) parameters.
    pub fn default_config() -> Self {
        Self::new(RtcConfig::default())
    }

    /// The controller's current target rate, bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// The smoothed queueing-delay estimate, seconds.
    pub fn queueing_delay_estimate(&self) -> f64 {
        self.smoothed_qdelay
    }
}

impl CongestionControl for RtcController {
    fn name(&self) -> &'static str {
        "rtc"
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        let rtt = ack.rtt;
        self.min_rtt = Some(self.min_rtt.map_or(rtt, |m| m.min(rtt)));
        let base = self.min_rtt.expect("set above");
        let qdelay = rtt.saturating_sub(base).as_secs_f64();
        self.smoothed_qdelay = 0.8 * self.smoothed_qdelay + 0.2 * qdelay;

        // Act at most once per RTT.
        if ack.now.saturating_sub(self.last_update) < rtt {
            return;
        }
        self.last_update = ack.now;

        let over = self.cfg.overuse_threshold.as_secs_f64();
        let under = self.cfg.underuse_threshold.as_secs_f64();
        if self.smoothed_qdelay > over {
            self.rate_bps *= self.cfg.decrease_factor;
        } else if self.smoothed_qdelay < under {
            self.rate_bps *= self.cfg.increase_factor;
        }
        // Between the thresholds: hold.
        self.rate_bps = self.rate_bps.clamp(self.cfg.min_rate_bps, self.cfg.max_rate_bps);
    }

    fn on_congestion(&mut self, _now: SimTime, _signal: CongestionSignal) {
        // Loss is a strong overuse signal for a conferencing flow.
        self.rate_bps = (self.rate_bps * 0.7).clamp(self.cfg.min_rate_bps, self.cfg.max_rate_bps);
    }

    fn cwnd(&self) -> f64 {
        // Safety cap: about 400 ms of data at the current rate — pacing is
        // the real regulator, the window only bounds how much can pile up
        // in a dead path.
        (self.rate_bps / 8.0 * 0.4 / 1200.0).max(4.0)
    }

    fn pacing_rate_bps(&self) -> Option<f64> {
        Some(self.rate_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::from_millis(now_ms),
            seq: 0,
            rtt: SimTime::from_millis(rtt_ms),
            acked_bytes: 1200,
            inflight: 0,
        }
    }

    #[test]
    fn probes_up_when_delay_is_low() {
        let mut cc = RtcController::default_config();
        let r0 = cc.rate_bps();
        for t in 1..5_000u64 {
            cc.on_ack(&ack(t, 40)); // constant RTT: zero queueing delay
        }
        assert!(cc.rate_bps() > 2.0 * r0, "rate = {}", cc.rate_bps());
    }

    #[test]
    fn backs_off_when_delay_builds() {
        let mut cc = RtcController::default_config();
        for t in 1..2_000u64 {
            cc.on_ack(&ack(t, 40));
        }
        let r = cc.rate_bps();
        // Queueing delay of 100 ms on top of the 40 ms base.
        for t in 2_000..4_000u64 {
            cc.on_ack(&ack(t, 140));
        }
        assert!(cc.rate_bps() < 0.5 * r, "rate {} -> {}", r, cc.rate_bps());
    }

    #[test]
    fn rate_respects_band() {
        let mut cc = RtcController::default_config();
        for t in 1..60_000u64 {
            cc.on_ack(&ack(t, 40));
        }
        assert!(cc.rate_bps() <= RtcConfig::default().max_rate_bps);
        for t in 60_000..120_000u64 {
            cc.on_ack(&ack(t, 500));
        }
        assert!(cc.rate_bps() >= RtcConfig::default().min_rate_bps);
    }

    #[test]
    fn loss_forces_backoff() {
        let mut cc = RtcController::default_config();
        for t in 1..3_000u64 {
            cc.on_ack(&ack(t, 40));
        }
        let r = cc.rate_bps();
        cc.on_congestion(SimTime::from_secs(3), CongestionSignal::Loss);
        assert!((cc.rate_bps() - r * 0.7).abs() < 1.0);
    }

    #[test]
    fn holds_between_thresholds() {
        let mut cc = RtcController::default_config();
        for t in 1..1_000u64 {
            cc.on_ack(&ack(t, 40));
        }
        // Drive the smoothed qdelay into the dead band (~25 ms over base).
        for t in 1_000..3_000u64 {
            cc.on_ack(&ack(t, 65));
        }
        let r = cc.rate_bps();
        for t in 3_000..4_000u64 {
            cc.on_ack(&ack(t, 65));
        }
        assert!((cc.rate_bps() - r).abs() / r < 0.02, "{} vs {}", r, cc.rate_bps());
    }

    #[test]
    #[should_panic(expected = "thresholds inverted")]
    fn invalid_config_rejected() {
        RtcController::new(RtcConfig {
            overuse_threshold: SimTime::from_millis(5),
            underuse_threshold: SimTime::from_millis(10),
            ..RtcConfig::default()
        });
    }
}
