//! Behavioural tests: the congestion controllers driven over the real
//! simulator must exhibit their textbook signatures — this is what makes
//! the paper's A/B counterfactual meaningful (Cubic is loss-driven and
//! buffer-filling, Vegas is delay-driven and buffer-shy).

use ibox_cc::{by_name, BbrLite, Cubic, Vegas};
use ibox_sim::{PathConfig, PathEmulator, SimTime};
use ibox_trace::metrics::{avg_rate_mbps, delay_percentile_ms};

fn emulator(rate_mbps: f64, delay_ms: u64, buffer_bytes: u64) -> PathEmulator {
    PathEmulator::from_spec(
        ibox_sim::PathSpec::single(PathConfig::simple(
            rate_mbps * 1e6,
            SimTime::from_millis(delay_ms),
            buffer_bytes,
        )),
        SimTime::from_secs(15),
    )
}

#[test]
fn cubic_saturates_the_link() {
    let emu = emulator(8.0, 20, 120_000);
    let out = emu.run_sender(Box::new(Cubic::new()), "cubic", 1);
    let t = out.trace("cubic").unwrap();
    let rate = avg_rate_mbps(t);
    assert!(rate > 6.5, "cubic should achieve most of 8 Mbps, got {rate}");
}

#[test]
fn vegas_achieves_lower_delay_than_cubic() {
    let emu = emulator(8.0, 20, 150_000);
    let cubic = emu.run_sender(Box::new(Cubic::new()), "a", 1);
    let vegas = emu.run_sender(Box::new(Vegas::new()), "a", 1);
    let d_cubic = delay_percentile_ms(cubic.trace("a").unwrap(), 0.95).unwrap();
    let d_vegas = delay_percentile_ms(vegas.trace("a").unwrap(), 0.95).unwrap();
    // Cubic fills the 150 KB buffer (≈150 ms at 8 Mbps); Vegas keeps only a
    // few packets queued.
    assert!(
        d_vegas < d_cubic * 0.7,
        "vegas p95 {d_vegas} ms should be well below cubic {d_cubic} ms"
    );
}

#[test]
fn vegas_still_uses_most_of_the_link() {
    let emu = emulator(8.0, 20, 150_000);
    let out = emu.run_sender(Box::new(Vegas::new()), "v", 2);
    let rate = avg_rate_mbps(out.trace("v").unwrap());
    assert!(rate > 5.5, "vegas rate = {rate}");
}

#[test]
fn cubic_experiences_loss_on_shallow_buffers() {
    let emu = emulator(6.0, 25, 20_000);
    let out = emu.run_sender(Box::new(Cubic::new()), "c", 3);
    let t = out.trace("c").unwrap();
    assert!(t.loss_rate() > 0.001, "cubic should overflow a shallow buffer");
    assert!(avg_rate_mbps(t) > 4.0, "and still mostly fill the link");
}

#[test]
fn bbr_fills_link_without_filling_buffer() {
    let emu = emulator(8.0, 20, 400_000); // deep buffer
    let bbr = emu.run_sender(Box::new(BbrLite::new()), "b", 4);
    let cubic = emu.run_sender(Box::new(Cubic::new()), "b", 4);
    let r_bbr = avg_rate_mbps(bbr.trace("b").unwrap());
    let d_bbr = delay_percentile_ms(bbr.trace("b").unwrap(), 0.95).unwrap();
    let d_cubic = delay_percentile_ms(cubic.trace("b").unwrap(), 0.95).unwrap();
    assert!(r_bbr > 5.0, "bbr rate = {r_bbr}");
    assert!(
        d_bbr < d_cubic,
        "bbr p95 {d_bbr} ms should undercut cubic {d_cubic} ms on deep buffers"
    );
}

#[test]
fn rtc_controller_tracks_capacity_with_lower_delay_than_cubic() {
    let emu = emulator(4.0, 30, 100_000);
    let rtc = emu.run_sender(by_name("rtc").unwrap(), "r", 5);
    let cubic = emu.run_sender(by_name("cubic").unwrap(), "r", 5);
    let t = rtc.trace("r").unwrap();
    let rate = avg_rate_mbps(t);
    let p95_rtc = delay_percentile_ms(t, 0.95).unwrap();
    let p95_cubic = delay_percentile_ms(cubic.trace("r").unwrap(), 0.95).unwrap();
    // The delay-gradient loop should use a healthy share of the link while
    // keeping p95 delay below a buffer-filling loss-based sender.
    assert!(rate > 1.5, "rtc should use a fair share: {rate} Mbps");
    assert!(p95_rtc < p95_cubic, "rtc p95 {p95_rtc} ms should undercut cubic {p95_cubic} ms");
}

#[test]
fn protocols_are_deterministic_over_the_sim() {
    let emu = emulator(6.0, 20, 80_000);
    for name in ["cubic", "vegas", "reno", "bbr", "rtc"] {
        let a = emu.run_sender(by_name(name).unwrap(), "x", 42);
        let b = emu.run_sender(by_name(name).unwrap(), "x", 42);
        assert_eq!(a.traces, b.traces, "{name} must be deterministic");
    }
}

#[test]
fn two_cubic_flows_share_the_link() {
    use ibox_sim::FlowConfig;
    let emu = emulator(8.0, 20, 120_000);
    let out = emu.run_senders(
        vec![
            (
                FlowConfig::bulk("f1", SimTime::from_secs(30)),
                Box::new(Cubic::new()) as Box<dyn ibox_sim::CongestionControl>,
            ),
            (FlowConfig::bulk("f2", SimTime::from_secs(30)), Box::new(Cubic::new())),
        ],
        7,
    );
    let r1 = avg_rate_mbps(out.trace("f1").unwrap());
    let r2 = avg_rate_mbps(out.trace("f2").unwrap());
    let total = r1 + r2;
    assert!(total > 6.5, "combined rate = {total}");
    // Rough fairness: neither flow starves.
    assert!(r1 > 1.5 && r2 > 1.5, "shares: {r1} / {r2}");
}
