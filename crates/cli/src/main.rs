//! `ibox` — the command-line interface to the iBox reproduction.
//!
//! ```text
//! ibox fit <trace.{json,csv}> [-o profile.json] [--no-cross] [--with-reordering]
//! ibox simulate <profile.json> --protocol <name> [--duration S] [--seed N] [-o out.{json,csv}]
//! ibox metrics <trace.{json,csv}>
//! ibox synth --profile <name> --protocol <name> [--duration S] [--seed N] [-o trace.{json,csv}]
//! ```
//!
//! Traces are single-flow files: `.json` (the native `FlowTrace` format)
//! or `.csv` (`seq,send_ns,size,recv_ns`, empty `recv_ns` = lost).

use std::process::ExitCode;

mod args;
mod commands;
mod io;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            ibox_obs::error!("{e}");
            eprintln!();
            eprintln!("{}", commands::usage());
            ExitCode::FAILURE
        }
    }
}
