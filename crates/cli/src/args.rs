//! Minimal argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: positional arguments plus `--key value` /
/// `--flag` options.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// Option values (`--key value`); flags map to an empty string.
    pub options: BTreeMap<String, String>,
}

/// Options that take no value.
const FLAGS: &[&str] = &["--no-cross", "--with-reordering", "--quiet", "--verbose"];

/// Parse `argv` (after the subcommand) into positionals and options.
pub fn parse(argv: &[String]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut it = argv.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(key) = arg.strip_prefix("--") {
            let key = format!("--{key}");
            if FLAGS.contains(&key.as_str()) {
                out.options.insert(key, String::new());
            } else {
                let value = it.next().ok_or_else(|| format!("option {key} needs a value"))?;
                out.options.insert(key, value.clone());
            }
        } else if let Some(key) = arg.strip_prefix('-') {
            // Short options: only `-o <path>`.
            if key == "o" {
                let value = it.next().ok_or_else(|| "option -o needs a value".to_string())?;
                out.options.insert("-o".into(), value.clone());
            } else {
                return Err(format!("unknown option -{key}"));
            }
        } else {
            out.positional.push(arg.clone());
        }
    }
    Ok(out)
}

impl Parsed {
    /// Required positional argument `idx`.
    pub fn positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positional.get(idx).map(String::as_str).ok_or_else(|| format!("missing {what}"))
    }

    /// Optional option value.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Required option value.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.opt(key).ok_or_else(|| format!("missing required option {key}"))
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Numeric option with default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for {key}: {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_and_options_mix() {
        let p = parse(&argv(&["trace.json", "--protocol", "vegas", "-o", "out.json"])).unwrap();
        assert_eq!(p.positional, vec!["trace.json"]);
        assert_eq!(p.opt("--protocol"), Some("vegas"));
        assert_eq!(p.opt("-o"), Some("out.json"));
    }

    #[test]
    fn flags_take_no_value() {
        let p = parse(&argv(&["--no-cross", "t.json", "--with-reordering"])).unwrap();
        assert!(p.flag("--no-cross"));
        assert!(p.flag("--with-reordering"));
        assert_eq!(p.positional, vec!["t.json"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv(&["--protocol"])).is_err());
        assert!(parse(&argv(&["-o"])).is_err());
    }

    #[test]
    fn unknown_short_option_rejected() {
        assert!(parse(&argv(&["-x"])).is_err());
    }

    #[test]
    fn numeric_options() {
        let p = parse(&argv(&["--seed", "42", "--duration", "12.5"])).unwrap();
        assert_eq!(p.num("--seed", 0u64).unwrap(), 42);
        assert_eq!(p.num("--duration", 30.0f64).unwrap(), 12.5);
        assert_eq!(p.num("--missing", 7u32).unwrap(), 7);
        assert!(p.num::<u64>("--duration", 0).is_err());
    }

    #[test]
    fn required_accessors() {
        let p = parse(&argv(&["a"])).unwrap();
        assert_eq!(p.positional(0, "trace").unwrap(), "a");
        assert!(p.positional(1, "thing").is_err());
        assert!(p.required("--protocol").is_err());
    }
}
