//! Declarative argument parsing (no external dependencies).
//!
//! Each subcommand declares a [`CmdSpec`] — its positionals and an
//! [`OptSpec`] table — and parsing, usage text, and error messages all
//! derive from that single table. Unknown options are rejected (with a
//! "did you mean" suggestion) instead of being treated as value-taking
//! options, which used to silently swallow the next argument.

use std::collections::BTreeMap;

/// One option a subcommand accepts.
#[derive(Debug, Clone, Copy)]
pub struct OptSpec {
    /// Canonical long name (`--seed`) — the key commands read back.
    pub name: &'static str,
    /// Optional short alias (`-o`), shown in usage when present.
    pub short: Option<&'static str>,
    /// Whether the option consumes the next argument as its value.
    pub takes_value: bool,
    /// Whether the option may be given more than once (`--train a --train b`).
    pub repeatable: bool,
    /// Placeholder (or `a|b|c` enumeration) shown in usage text.
    pub value_name: &'static str,
}

impl OptSpec {
    /// A boolean flag: present or absent, no value.
    pub const fn flag(name: &'static str) -> Self {
        Self { name, short: None, takes_value: false, repeatable: false, value_name: "" }
    }

    /// An option taking one value.
    pub const fn value(name: &'static str, value_name: &'static str) -> Self {
        Self { name, short: None, takes_value: true, repeatable: false, value_name }
    }

    /// An option taking one value, allowed to repeat.
    pub const fn repeated(name: &'static str, value_name: &'static str) -> Self {
        Self { name, short: None, takes_value: true, repeatable: true, value_name }
    }

    /// Attach a short alias.
    pub const fn with_short(mut self, short: &'static str) -> Self {
        self.short = Some(short);
        self
    }

    /// The name shown in usage (short alias wins — it is what people type).
    fn display_name(&self) -> &'static str {
        self.short.unwrap_or(self.name)
    }
}

/// One positional argument in a [`CmdSpec`].
#[derive(Debug, Clone, Copy)]
pub struct PosSpec {
    /// Placeholder shown in usage text.
    pub name: &'static str,
    /// Required positionals render as `<name>`, optional as `[name]`.
    pub required: bool,
    /// Whether more than one value may be supplied (`<trace>...`).
    pub variadic: bool,
}

/// A subcommand's full argument grammar.
#[derive(Debug, Clone, Copy)]
pub struct CmdSpec {
    /// Subcommand name (`fit`, `simulate`, …).
    pub name: &'static str,
    /// Positional arguments, in order.
    pub positionals: &'static [PosSpec],
    /// The option table.
    pub opts: &'static [OptSpec],
}

/// Flags every subcommand accepts (mapped onto the log filter before
/// dispatch, but still declared so parsing accepts them anywhere).
pub const GLOBAL_FLAGS: [OptSpec; 2] = [OptSpec::flag("--quiet"), OptSpec::flag("--verbose")];

impl CmdSpec {
    /// The one-line usage synopsis, generated from the tables.
    pub fn usage_line(&self) -> String {
        let mut s = format!("  ibox {}", self.name);
        for p in self.positionals {
            let dots = if p.variadic { "..." } else { "" };
            if p.required {
                s.push_str(&format!(" <{}>{dots}", p.name));
            } else {
                s.push_str(&format!(" [{}]{dots}", p.name));
            }
        }
        for o in self.opts {
            let mut inner = o.display_name().to_string();
            if o.takes_value {
                inner.push_str(&format!(" <{}>", o.value_name));
            }
            if o.repeatable {
                inner.push_str("...");
            }
            s.push_str(&format!(" [{inner}]"));
        }
        s
    }

    fn find(&self, arg: &str) -> Option<&OptSpec> {
        self.opts.iter().chain(GLOBAL_FLAGS.iter()).find(|o| o.name == arg || o.short == Some(arg))
    }

    /// Every way an option can be spelled for this command — the
    /// candidate set for "did you mean" suggestions.
    fn spellings(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for o in self.opts.iter().chain(GLOBAL_FLAGS.iter()) {
            out.push(o.name);
            if let Some(s) = o.short {
                out.push(s);
            }
        }
        out
    }
}

/// Parsed command line: positional arguments plus options, keyed by their
/// canonical (long) name.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// Option values under the canonical name; flags map to empty vecs'
    /// worth of presence (a single empty string).
    pub options: BTreeMap<String, Vec<String>>,
}

/// Parse `argv` (after the subcommand) against the command's grammar.
///
/// Anything starting with `-` that the table doesn't know is an error —
/// with a suggestion when a declared option is close — so a typo like
/// `--no-crossx` can never swallow the argument after it.
pub fn parse(argv: &[String], cmd: &CmdSpec) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        if arg.starts_with('-') && arg.len() > 1 {
            let Some(opt) = cmd.find(arg) else {
                return Err(unknown_option_error(arg, cmd));
            };
            let entry = out.options.entry(opt.name.to_string()).or_default();
            if !entry.is_empty() && !opt.repeatable {
                return Err(format!("option {} given more than once", opt.name));
            }
            if opt.takes_value {
                let value =
                    it.next().ok_or_else(|| format!("option {} needs a value", opt.name))?;
                entry.push(value.clone());
            } else {
                entry.push(String::new());
            }
        } else {
            out.positional.push(arg.clone());
        }
    }
    let max =
        if cmd.positionals.iter().any(|p| p.variadic) { usize::MAX } else { cmd.positionals.len() };
    if out.positional.len() > max {
        return Err(format!(
            "unexpected argument {:?} (ibox {} takes at most {max} positional argument{})",
            out.positional[max],
            cmd.name,
            if max == 1 { "" } else { "s" }
        ));
    }
    Ok(out)
}

fn unknown_option_error(arg: &str, cmd: &CmdSpec) -> String {
    let mut msg = format!("unknown option {arg} for `ibox {}`", cmd.name);
    let best = cmd
        .spellings()
        .into_iter()
        .map(|cand| (levenshtein(arg, cand), cand))
        .min_by_key(|(d, _)| *d);
    if let Some((d, cand)) = best {
        // Only suggest near-misses: a distance beyond a third of the
        // option's length is noise, not a typo.
        if d <= (cand.len() / 3).max(1) {
            msg.push_str(&format!(" — did you mean `{cand}`?"));
        }
    }
    msg
}

/// Classic dynamic-programming edit distance, O(a·b).
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

impl Parsed {
    /// Required positional argument `idx`.
    pub fn positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positional.get(idx).map(String::as_str).ok_or_else(|| format!("missing {what}"))
    }

    /// Optional option value (the last one given, by canonical name).
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).and_then(|v| v.last()).map(String::as_str)
    }

    /// Every value a repeatable option was given.
    pub fn opt_all(&self, key: &str) -> Vec<&str> {
        self.options.get(key).map(|v| v.iter().map(String::as_str).collect()).unwrap_or_default()
    }

    /// Required option value.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.opt(key).ok_or_else(|| format!("missing required option {key}"))
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Numeric option with default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for {key}: {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_CMD: CmdSpec = CmdSpec {
        name: "test",
        positionals: &[PosSpec { name: "trace", required: true, variadic: false }],
        opts: &[
            OptSpec::value("--protocol", "name"),
            OptSpec::value("--seed", "N"),
            OptSpec::value("--duration", "S"),
            OptSpec::value("--output", "path").with_short("-o"),
            OptSpec::flag("--no-cross"),
            OptSpec::flag("--with-reordering"),
            OptSpec::repeated("--train", "trace"),
        ],
    };

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_and_options_mix() {
        let p = parse(&argv(&["trace.json", "--protocol", "vegas", "-o", "out.json"]), &TEST_CMD)
            .unwrap();
        assert_eq!(p.positional, vec!["trace.json"]);
        assert_eq!(p.opt("--protocol"), Some("vegas"));
        // Short aliases resolve to the canonical long name.
        assert_eq!(p.opt("--output"), Some("out.json"));
    }

    #[test]
    fn flags_take_no_value() {
        let p = parse(&argv(&["--no-cross", "t.json", "--with-reordering"]), &TEST_CMD).unwrap();
        assert!(p.flag("--no-cross"));
        assert!(p.flag("--with-reordering"));
        assert_eq!(p.positional, vec!["t.json"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv(&["--protocol"]), &TEST_CMD).is_err());
        assert!(parse(&argv(&["-o"]), &TEST_CMD).is_err());
    }

    #[test]
    fn unknown_options_rejected_with_suggestion() {
        let err = parse(&argv(&["-x"]), &TEST_CMD).unwrap_err();
        assert!(err.contains("unknown option -x"), "{err}");

        // The old parser treated any mistyped `--flag` as value-taking and
        // silently swallowed the next argument. Now it's a hard error with
        // a suggestion.
        let err = parse(&argv(&["--no-crossx", "t.json"]), &TEST_CMD).unwrap_err();
        assert!(err.contains("unknown option --no-crossx"), "{err}");
        assert!(err.contains("did you mean `--no-cross`?"), "{err}");

        let err = parse(&argv(&["--sed", "7"]), &TEST_CMD).unwrap_err();
        assert!(err.contains("did you mean `--seed`?"), "{err}");
    }

    #[test]
    fn far_off_typos_get_no_suggestion() {
        let err = parse(&argv(&["--zzzzzzzzzz"]), &TEST_CMD).unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn repeatable_options_accumulate_and_others_do_not() {
        let p = parse(&argv(&["--train", "a.json", "--train", "b.json"]), &TEST_CMD).unwrap();
        assert_eq!(p.opt_all("--train"), vec!["a.json", "b.json"]);

        let err = parse(&argv(&["--seed", "1", "--seed", "2"]), &TEST_CMD).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn excess_positionals_rejected() {
        let err = parse(&argv(&["a.json", "b.json"]), &TEST_CMD).unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
    }

    #[test]
    fn global_flags_parse_everywhere() {
        let p = parse(&argv(&["t.json", "--verbose"]), &TEST_CMD).unwrap();
        assert!(p.flag("--verbose"));
    }

    #[test]
    fn numeric_options() {
        let p = parse(&argv(&["--seed", "42", "--duration", "12.5"]), &TEST_CMD).unwrap();
        assert_eq!(p.num("--seed", 0u64).unwrap(), 42);
        assert_eq!(p.num("--duration", 30.0f64).unwrap(), 12.5);
        assert_eq!(p.num("--missing", 7u32).unwrap(), 7);
        assert!(p.num::<u64>("--duration", 0).is_err());
    }

    #[test]
    fn required_accessors() {
        let p = parse(&argv(&["a"]), &TEST_CMD).unwrap();
        assert_eq!(p.positional(0, "trace").unwrap(), "a");
        assert!(p.positional(1, "thing").is_err());
        assert!(p.required("--protocol").is_err());
    }

    #[test]
    fn usage_lines_render_from_the_table() {
        let line = TEST_CMD.usage_line();
        assert!(line.starts_with("  ibox test <trace>"), "{line}");
        assert!(line.contains("[--protocol <name>]"), "{line}");
        assert!(line.contains("[-o <path>]"), "{line}");
        assert!(line.contains("[--train <trace>...]"), "{line}");
        assert!(line.contains("[--no-cross]"), "{line}");
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("--sed", "--seed"), 1);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }
}
