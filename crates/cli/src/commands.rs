//! Subcommand implementations.
//!
//! Each subcommand owns a declarative [`CmdSpec`] grammar; parsing, the
//! usage text, and unknown-option errors all derive from those tables.

use std::path::Path;

use ibox::{
    fit_model, BatchSpec, FitCache, FittedModel, IBoxMlSpec, ModelArtifact, ModelKind, PathModel,
    RunRecord, RunSpec, ValidityRegion,
};
use ibox_obs::{RunManifest, RunManifestBuilder};
use ibox_sim::SimTime;
use ibox_testbed::pantheon::run_protocol;
use ibox_testbed::Profile;
use ibox_trace::metrics::TraceMetrics;

use crate::args::{parse, CmdSpec, OptSpec, PosSpec};
use crate::io::{load_model, load_trace, save_text, save_trace};

const OUTPUT: OptSpec = OptSpec::value("--output", "path").with_short("-o");
const DURATION: OptSpec = OptSpec::value("--duration", "S");
const SEED: OptSpec = OptSpec::value("--seed", "N");
const JOBS: OptSpec = OptSpec::value("--jobs", "N");
const PROTOCOL: OptSpec = OptSpec::value("--protocol", "cubic|reno|vegas|bbr|rtc");
const MODEL_CACHE: OptSpec = OptSpec::value("--model-cache", "dir");

const FIT: CmdSpec = CmdSpec {
    name: "fit",
    positionals: &[PosSpec { name: "trace.{json,csv}", required: true, variadic: false }],
    opts: &[
        OUTPUT,
        OptSpec::value("--model", "iboxnet|statistical-loss|iboxml"),
        OptSpec::flag("--no-cross"),
        OptSpec::flag("--with-reordering"),
    ],
};

const REPLAY: CmdSpec = CmdSpec {
    name: "replay",
    positionals: &[PosSpec { name: "model.json", required: true, variadic: false }],
    opts: &[
        PROTOCOL,
        DURATION,
        SEED,
        OptSpec::flag("--per-stream"),
        OptSpec::value("--fidelity", "packet|flow|hybrid"),
        OptSpec::value("--path", "path.json"),
        OUTPUT,
    ],
};

const SIMULATE: CmdSpec = CmdSpec {
    name: "simulate",
    positionals: &[PosSpec { name: "profile.json", required: true, variadic: false }],
    opts: &[PROTOCOL, DURATION, SEED, OptSpec::value("--runs", "N"), JOBS, MODEL_CACHE, OUTPUT],
};

const METRICS: CmdSpec = CmdSpec {
    name: "metrics",
    positionals: &[PosSpec { name: "trace.{json,csv}", required: true, variadic: false }],
    opts: &[],
};

const SYNTH: CmdSpec = CmdSpec {
    name: "synth",
    positionals: &[],
    opts: &[
        OptSpec::value(
            "--profile",
            "india-cellular|india-cellular-pf|ethernet|token-bucket-wifi|wifi|satellite|cellular-handover",
        ),
        PROTOCOL,
        DURATION,
        SEED,
        OUTPUT,
    ],
};

const VALIDITY: CmdSpec = CmdSpec {
    name: "validity",
    positionals: &[PosSpec { name: "more-train-traces", required: false, variadic: true }],
    opts: &[
        OptSpec::repeated("--train", "trace"),
        OptSpec::value("--check", "trace"),
        JOBS,
        MODEL_CACHE,
    ],
};

const BATCH: CmdSpec = CmdSpec {
    name: "batch",
    positionals: &[PosSpec { name: "batch.json", required: true, variadic: false }],
    opts: &[JOBS, MODEL_CACHE, OUTPUT],
};

const SERVE: CmdSpec = CmdSpec {
    name: "serve",
    positionals: &[],
    opts: &[
        OptSpec::value("--addr", "host:port"),
        JOBS,
        MODEL_CACHE,
        OptSpec::value("--max-inflight", "K"),
        OptSpec::value("--read-timeout", "S"),
        OptSpec::value("--refit-chunks", "N"),
        OptSpec::value("--registry-cap", "bytes"),
        OptSpec::value("--fitcache-entries", "N"),
    ],
};

const CALL: CmdSpec = CmdSpec {
    name: "call",
    positionals: &[PosSpec { name: "url", required: true, variadic: false }],
    opts: &[
        OptSpec::value("--data", "body.json"),
        OptSpec::flag("--post"),
        OptSpec::value("--timeout", "S"),
        OptSpec::value("--trace-id", "id"),
        OUTPUT,
    ],
};

const TRACE: CmdSpec = CmdSpec {
    name: "trace",
    positionals: &[
        PosSpec { name: "export", required: true, variadic: false },
        PosSpec { name: "batch.json", required: true, variadic: false },
    ],
    opts: &[JOBS, MODEL_CACHE, OptSpec::flag("--timeline"), OUTPUT],
};

const INGEST: CmdSpec = CmdSpec {
    name: "ingest",
    positionals: &[
        PosSpec { name: "append|finalize|status", required: true, variadic: false },
        PosSpec { name: "trace.{json,csv}", required: false, variadic: false },
    ],
    opts: &[
        OptSpec::value("--url", "http://host:port"),
        OptSpec::value("--session", "id"),
        OptSpec::value("--chunks", "N"),
        OptSpec::value("--timeout", "S"),
    ],
};

const VERSION: CmdSpec = CmdSpec { name: "version", positionals: &[], opts: &[] };

/// Every subcommand grammar, in help order.
const COMMANDS: [&CmdSpec; 12] = [
    &FIT, &REPLAY, &SIMULATE, &METRICS, &SYNTH, &VALIDITY, &BATCH, &SERVE, &CALL, &INGEST, &TRACE,
    &VERSION,
];

/// Usage text shown on errors — generated from the [`CmdSpec`] tables.
pub fn usage() -> String {
    let mut s = String::from("usage:\n");
    for cmd in COMMANDS {
        s.push_str(&cmd.usage_line());
        s.push('\n');
    }
    s.push_str(
        "\nglobal flags: --verbose (debug diagnostics on stderr), --quiet (errors only);
the IBOX_LOG env var (off|error|warn|info|debug|trace) sets the default.
--jobs N spreads independent runs over N worker threads (0 = all cores)
without changing any result — batches are bit-identical at any value.
Commands with an output file also write a <output>.manifest.<ext> run
manifest (seed, config hash, git rev, metrics).",
    );
    s
}

/// Dispatch a full argv (starting at the subcommand).
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    // Verbosity flags apply to every subcommand; map them onto the
    // process-wide log filter before any command logic runs.
    let quiet = argv.iter().any(|a| a == "--quiet");
    let verbose = argv.iter().any(|a| a == "--verbose");
    ibox_obs::log::set_level_from_flags(quiet, verbose);

    let Some(cmd) = argv.first() else {
        return Err("no subcommand".into());
    };
    let rest = &argv[1..];
    ibox_obs::debug!("dispatching {cmd} {rest:?}");
    match cmd.as_str() {
        "fit" => cmd_fit(rest),
        "replay" => cmd_replay(rest),
        "simulate" => cmd_simulate(rest),
        "metrics" => cmd_metrics(rest),
        "synth" => cmd_synth(rest),
        "validity" => cmd_validity(rest),
        "batch" => cmd_batch(rest),
        "serve" => cmd_serve(rest),
        "call" => cmd_call(rest),
        "ingest" => cmd_ingest(rest),
        "trace" => cmd_trace(rest),
        "version" | "--version" | "-V" => {
            println!("{}", version_line());
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Write the run manifest next to `out`, carrying the global registry
/// snapshot (the simulator folds each run's per-run metrics into it).
fn write_manifest(builder: RunManifestBuilder, out: &str) -> Result<(), String> {
    let manifest = builder.finish(ibox_obs::global().snapshot());
    let path = RunManifest::path_for_output(Path::new(out));
    manifest
        .write_to(&path)
        .map_err(|e| format!("cannot write manifest {}: {e}", path.display()))?;
    ibox_obs::info!("run manifest written to {}", path.display());
    Ok(())
}

/// Resolve `--model-cache <dir>` into a fit cache: disk-backed when the
/// flag is given, otherwise an invocation-local in-memory cache.
fn model_cache(p: &crate::args::Parsed) -> Result<FitCache, String> {
    match p.opt("--model-cache") {
        Some(dir) => FitCache::with_dir(dir),
        None => Ok(FitCache::in_memory()),
    }
}

/// Map the `fit --model` selector (plus the legacy iBoxNet fit-variant
/// flags) onto a [`ModelKind`].
fn fit_kind(p: &crate::args::Parsed) -> Result<ModelKind, String> {
    let kind = match p.opt("--model") {
        None | Some("iboxnet") => ModelKind::IBoxNet,
        Some("statistical-loss") => ModelKind::StatisticalLoss,
        Some("iboxml") => ModelKind::IBoxMl(IBoxMlSpec::default()),
        Some(other) => {
            return Err(format!(
                "unknown model kind {other:?} (use iboxnet, statistical-loss, or iboxml)"
            ))
        }
    };
    match (p.flag("--no-cross"), p.flag("--with-reordering")) {
        (false, false) => Ok(kind),
        _ if kind != ModelKind::IBoxNet => {
            Err("--no-cross/--with-reordering only apply to the iboxnet model".into())
        }
        (true, false) => Ok(ModelKind::IBoxNetNoCross),
        (false, true) => Ok(ModelKind::IBoxNetReorder),
        (true, true) => Err("--no-cross and --with-reordering are mutually exclusive".into()),
    }
}

fn cmd_fit(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &FIT)?;
    let kind = fit_kind(&p)?;
    let trace = load_trace(p.positional(0, "trace file")?)?;
    let artifact = ModelArtifact::new(&kind, fit_model(&kind, &trace));
    println!("fitted {} from {} packets:", kind.name(), trace.len());
    match &artifact.model {
        FittedModel::IBoxNet(model) => {
            println!("  bandwidth   : {:.3} Mbps", model.params.bandwidth_bps / 1e6);
            println!("  prop delay  : {:.2} ms", model.params.prop_delay.as_millis_f64());
            println!("  buffer      : {} bytes", model.params.buffer_bytes);
            println!("  cross bytes : {:.0}", model.cross.total_bytes());
            if let Some(r) = &model.reorder {
                println!(
                    "  reordering  : p={:.4}, extra {:.1}-{:.1} ms",
                    r.probability,
                    r.extra_min.as_millis_f64(),
                    r.extra_max.as_millis_f64()
                );
            }
        }
        FittedModel::StatisticalLoss(model) => {
            println!("  bandwidth   : {:.3} Mbps", model.params.bandwidth_bps / 1e6);
            println!("  prop delay  : {:.2} ms", model.params.prop_delay.as_millis_f64());
            println!("  loss rate   : {:.4}", model.loss_rate);
        }
        FittedModel::IBoxMl(_) => {
            println!("  learned state-space model (LSTM weights in the artifact)");
        }
    }
    println!("  config hash : {}", artifact.config_hash);
    if let Some(out) = p.opt("--output") {
        artifact.save(Path::new(out)).map_err(|e| e.to_string())?;
        ibox_obs::info!("model artifact written to {out}");
        write_manifest(RunManifestBuilder::new("fit").config(&kind), out)?;
    }
    Ok(())
}

fn cmd_replay(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &REPLAY)?;
    let artifact = load_model(p.positional(0, "model artifact")?)?;
    let protocol = p.required("--protocol")?;
    if ibox_cc::by_name(protocol).is_none() {
        return Err(format!("unknown protocol {protocol:?}"));
    }
    let duration = SimTime::from_secs_f64(p.num("--duration", 30.0f64)?);
    let seed = p.num("--seed", 1u64)?;
    // --per-stream selects the legacy unroll for ML models; the batched
    // session is the default and produces byte-identical traces.
    let fidelity = p.opt("--fidelity").unwrap_or("packet").parse::<ibox::Fidelity>()?;
    // --path <file.json> replays the model through a composed chain of
    // bottleneck stages (a PathSpec: a bare stage array or
    // `{"stages": [...]}`) instead of its fitted single-stage path.
    let path = match p.opt("--path") {
        Some(file) => {
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            let spec: ibox_sim::PathSpec =
                serde_json::from_str(&text).map_err(|e| format!("bad path spec {file}: {e}"))?;
            if spec.is_empty() {
                return Err(format!("path spec {file} needs at least one stage"));
            }
            Some(spec)
        }
        None => None,
    };
    if let Some(spec) = &path {
        println!(
            "path          : {} stage(s), bottleneck {:.3} Mbps, prop {:.2} ms",
            spec.len(),
            spec.bottleneck_rate_bps() / 1e6,
            spec.total_prop_delay().as_millis_f64()
        );
    }
    let opts = ibox::ReplayOpts { batch_streams: !p.flag("--per-stream"), fidelity, path };
    let trace = artifact.model.simulate_with(protocol, duration, seed, opts);
    println!("model         : {} (fitted on {})", artifact.kind, artifact.fitted_on);
    print_metrics(&trace);
    println!("trace digest  : {}", trace.digest());
    if let Some(out) = p.opt("--output") {
        save_trace(&trace, out)?;
        ibox_obs::info!("replayed trace written to {out}");
        write_manifest(
            RunManifestBuilder::new("replay").seed(seed).config(&artifact.config_hash),
            out,
        )?;
    }
    Ok(())
}

fn cmd_simulate(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &SIMULATE)?;
    let builder = RunManifestBuilder::new("simulate");
    let profile_path = p.positional(0, "profile file")?;
    let protocol = p.required("--protocol")?;
    if ibox_cc::by_name(protocol).is_none() {
        return Err(format!("unknown protocol {protocol:?}"));
    }
    let duration_s = p.num("--duration", 30.0f64)?;
    let seed = p.num("--seed", 1u64)?;
    let runs = p.num("--runs", 1usize)?;
    let jobs = p.num("--jobs", 1usize)?;
    if runs == 0 {
        return Err("--runs must be at least 1".into());
    }

    if runs > 1 {
        // A replay ensemble: the same fitted profile under `runs`
        // consecutive seeds, executed as a batch on the runner pool.
        let mut b = BatchSpec::builder().jobs(jobs);
        for i in 0..runs {
            b = b.run(
                RunSpec::builder()
                    .profile_file(profile_path)
                    .protocol(protocol)
                    .duration_s(duration_s)
                    .seed(seed + i as u64)
                    .build()?,
            );
        }
        let batch = b.build()?;
        let cache = model_cache(&p)?;
        let wall = std::time::Instant::now();
        let result = ibox::run_batch_with_cache(&batch, batch.jobs, &cache)?;
        record_batch_timing(wall.elapsed().as_secs_f64(), batch.jobs, batch.runs.len());
        print_records(&result.records);
        if let Some(out) = p.opt("--output") {
            save_text(&result.to_json(), out)?;
            ibox_obs::info!("batch results written to {out}");
            write_manifest(builder.seed(seed).config(&batch), out)?;
        }
        return Ok(());
    }

    let artifact = load_model(profile_path)?;
    let duration = SimTime::from_secs_f64(duration_s);
    let trace = artifact.model.simulate(protocol, duration, seed);
    print_metrics(&trace);
    if let Some(out) = p.opt("--output") {
        save_trace(&trace, out)?;
        ibox_obs::info!("counterfactual trace written to {out}");
        write_manifest(builder.seed(seed).config(&artifact.config_hash), out)?;
    }
    Ok(())
}

fn cmd_metrics(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &METRICS)?;
    let trace = load_trace(p.positional(0, "trace file")?)?;
    print_metrics(&trace);
    Ok(())
}

fn cmd_synth(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &SYNTH)?;
    let builder = RunManifestBuilder::new("synth");
    let profile = Profile::from_name(p.required("--profile")?)?;
    let protocol = p.required("--protocol")?;
    if ibox_cc::by_name(protocol).is_none() {
        return Err(format!("unknown protocol {protocol:?}"));
    }
    let duration = SimTime::from_secs_f64(p.num("--duration", 30.0f64)?);
    let seed = p.num("--seed", 1u64)?;
    let inst = profile.builder().seed(seed).duration(duration).sample();
    let trace = run_protocol(&inst, protocol, duration, seed);
    print_metrics(&trace);
    if let Some(out) = p.opt("--output") {
        save_trace(&trace, out)?;
        ibox_obs::info!("trace written to {out}");
        write_manifest(builder.seed(seed).config(&inst.path), out)?;
    }
    Ok(())
}

fn cmd_validity(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &VALIDITY)?;
    // `--train` repeats; bare positionals are accepted as extra training
    // traces for back-compatibility with the single-value parser.
    let mut train_paths: Vec<&str> = p.opt_all("--train");
    for extra in &p.positional {
        train_paths.push(extra);
    }
    if train_paths.is_empty() {
        return Err("validity needs --train <trace> [--train <trace>…]".into());
    }
    let check_path = p.required("--check")?;
    let jobs = p.num("--jobs", 1usize)?;
    let cache = model_cache(&p)?;
    let train: Result<Vec<_>, _> = train_paths.iter().map(|t| load_trace(t)).collect();
    let region = ValidityRegion::fit_jobs_cached(&train?, jobs, &cache);
    let report = region.check(&load_trace(check_path)?);
    println!("coverage: {:.3}", report.coverage);
    for (feature, frac) in &report.out_of_range {
        println!("  out of range: {feature} ({:.1}% of packets)", frac * 100.0);
    }
    println!("valid at 0.95: {}", report.is_valid(0.95));
    Ok(())
}

fn cmd_batch(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &BATCH)?;
    let builder = RunManifestBuilder::new("batch");
    let spec_path = p.positional(0, "batch spec file")?;
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let mut batch = BatchSpec::from_json(&text)?;
    if let Some(jobs) = p.opt("--jobs") {
        batch.jobs = jobs.parse().map_err(|_| format!("invalid value for --jobs: {jobs:?}"))?;
    }
    let cache = model_cache(&p)?;
    let wall = std::time::Instant::now();
    let result = ibox::run_batch_with_cache(&batch, batch.jobs, &cache)?;
    record_batch_timing(wall.elapsed().as_secs_f64(), batch.jobs, batch.runs.len());
    print_records(&result.records);
    if let Some(out) = p.opt("--output") {
        save_text(&result.to_json(), out)?;
        ibox_obs::info!("batch results written to {out}");
        write_manifest(builder.config(&batch), out)?;
    }
    Ok(())
}

fn cmd_serve(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &SERVE)?;
    let addr = p.opt("--addr").unwrap_or("127.0.0.1:7070").to_string();
    // The registry/cache dir doubles as the daemon's state dir; without
    // --model-cache, models live only for this daemon's lifetime.
    let model_dir = match p.opt("--model-cache") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("ibox-serve-{}", std::process::id())),
    };
    let mut config = ibox_serve::ServeConfig::new(addr, &model_dir);
    config.jobs = p.num("--jobs", 0usize)?;
    config.max_inflight = p.num("--max-inflight", 64usize)?.max(1);
    let read_timeout_s: u64 = p.num("--read-timeout", 10u64)?;
    config.read_timeout = std::time::Duration::from_secs(read_timeout_s.max(1));
    // Streaming-ingest knobs: re-fit cadence (0 = only on finalize),
    // registry byte cap (0 = unbounded), fit-cache entry cap.
    config.ingest.refit_every_chunks = p.num("--refit-chunks", 0u64)?;
    config.registry_cap_bytes = p.num("--registry-cap", 0u64)?;
    config.fitcache_max_entries = p.num("--fitcache-entries", 0usize)?;

    let server = ibox_serve::Server::bind(config)?;
    // The line scripts poll for; stdout, flushed, before blocking.
    println!("listening on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();

    // The daemon has no output file to anchor the manifest to; write it
    // into the state dir instead so every run leaves provenance behind.
    let manifest = RunManifestBuilder::new("serve").finish(ibox_obs::global().snapshot());
    let path = model_dir.join("serve.manifest.json");
    manifest
        .write_to(&path)
        .map_err(|e| format!("cannot write manifest {}: {e}", path.display()))?;
    ibox_obs::info!("run manifest written to {}", path.display());
    Ok(())
}

fn cmd_call(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &CALL)?;
    let url = p.positional(0, "url")?;
    let timeout_s: u64 = p.num("--timeout", 10u64)?;
    let body = match p.opt("--data") {
        Some(path) => Some(std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?),
        None => None,
    };
    let method = if body.is_some() || p.flag("--post") { "POST" } else { "GET" };
    // `--trace-id <id>` names the request's causal trace so the caller
    // can fetch GET /trace/<id> afterwards (hex, or any token — the
    // daemon hashes non-hex ids deterministically).
    let headers: Vec<(String, String)> = match p.opt("--trace-id") {
        Some(id) => vec![("x-ibox-trace-id".to_string(), id.to_string())],
        None => Vec::new(),
    };
    let (status, resp) = ibox_serve::request_url_with_headers(
        url,
        method,
        &headers,
        body.as_deref(),
        std::time::Duration::from_secs(timeout_s.max(1)),
    )?;
    let text = String::from_utf8_lossy(&resp);
    if status >= 400 {
        return Err(format!("{method} {url} failed with {status}: {text}"));
    }
    match p.opt("--output") {
        Some(out) => save_text(&text, out)?,
        None => println!("{text}"),
    }
    Ok(())
}

/// `ibox ingest <append|finalize|status>`: the client side of the
/// daemon's streaming-ingest API. `append` streams a local trace file
/// to `POST /traces/<session>/append` in `--chunks` pieces (carrying
/// the trace's own meta, so the finalized fit is byte-identical to a
/// one-shot `fit` of the same file), `finalize` seals the session and
/// registers the fitted model's next lineage version, and `status`
/// reads `/ingest/sessions[/<session>]`.
fn cmd_ingest(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &INGEST)?;
    let action = p.positional(0, "ingest action")?;
    let base = p.opt("--url").unwrap_or("http://127.0.0.1:7070").trim_end_matches('/').to_string();
    let timeout_s: u64 = p.num("--timeout", 30u64)?;
    let timeout = std::time::Duration::from_secs(timeout_s.max(1));
    let session = p.opt("--session");
    match action {
        "append" => {
            let session = session.ok_or("ingest append needs --session <id>")?;
            let trace = load_trace(p.positional(1, "trace file")?)?;
            let records = trace.records();
            if records.is_empty() {
                return Err("trace has no records to append".into());
            }
            let chunks: usize = p.num("--chunks", 8usize)?;
            let per = records.len().div_ceil(chunks.clamp(1, records.len()));
            let meta = serde_json::to_string(&trace.meta)
                .map_err(|e| format!("cannot serialize trace meta: {e}"))?;
            let url = format!("{base}/traces/{session}/append");
            let mut last = String::new();
            let mut done = 0;
            while done < records.len() {
                let end = (done + per).min(records.len());
                let payload = serde_json::to_string(&records[done..end].to_vec())
                    .map_err(|e| format!("cannot serialize records: {e}"))?;
                let body = format!(r#"{{"offset": {done}, "meta": {meta}, "records": {payload}}}"#);
                let (status, resp) =
                    ibox_serve::request_url(&url, "POST", Some(body.as_bytes()), timeout)?;
                let text = String::from_utf8_lossy(&resp).into_owned();
                if status >= 400 {
                    return Err(format!("append of records {done}..{end} failed {status}: {text}"));
                }
                ibox_obs::debug!("appended records {done}..{end}: {text}");
                last = text;
                done = end;
            }
            println!("{last}");
            Ok(())
        }
        "finalize" => {
            let session = session.ok_or("ingest finalize needs --session <id>")?;
            let url = format!("{base}/traces/{session}/finalize");
            let (status, resp) = ibox_serve::request_url(&url, "POST", Some(b"{}"), timeout)?;
            let text = String::from_utf8_lossy(&resp);
            if status >= 400 {
                return Err(format!("finalize failed {status}: {text}"));
            }
            println!("{text}");
            Ok(())
        }
        "status" => {
            let url = match session {
                Some(id) => format!("{base}/ingest/sessions/{id}"),
                None => format!("{base}/ingest/sessions"),
            };
            let (status, resp) = ibox_serve::request_url(&url, "GET", None, timeout)?;
            let text = String::from_utf8_lossy(&resp);
            if status >= 400 {
                return Err(format!("status failed {status}: {text}"));
            }
            println!("{text}");
            Ok(())
        }
        other => {
            Err(format!("unknown ingest action {other:?} (expected append, finalize, or status)"))
        }
    }
}

/// `ibox trace export <batch.json> -o trace.json`: run a batch with
/// causal tracing on and write the span tree as Chrome trace-event JSON
/// — load the file at <https://ui.perfetto.dev> to see the fit/replay
/// phases and per-job lanes on a timeline. `--timeline` additionally
/// records the simulator's queue-depth counter track and drop/RTO
/// instants for every sim-backed run.
fn cmd_trace(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &TRACE)?;
    let action = p.positional(0, "trace action")?;
    if action != "export" {
        return Err(format!("unknown trace action {action:?} (expected \"export\")"));
    }
    let spec_path = p.positional(1, "batch spec file")?;
    let out = p.required("--output")?;
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let mut batch = BatchSpec::from_json(&text)?;
    if let Some(jobs) = p.opt("--jobs") {
        batch.jobs = jobs.parse().map_err(|_| format!("invalid value for --jobs: {jobs:?}"))?;
    }
    let cache = model_cache(&p)?;

    ibox_obs::trace::set_enabled(true);
    if p.flag("--timeline") {
        ibox_obs::trace::set_timeline(true);
    }
    let trace_id = ibox_obs::trace::next_trace_id();
    let scope =
        ibox_obs::trace::start_root(trace_id, "trace-export").expect("tracing was just enabled");
    let result = ibox::run_batch_with_cache(&batch, batch.jobs, &cache)?;
    drop(scope);

    let (name, events) = ibox_obs::trace::collector()
        .get(trace_id)
        .ok_or("trace was not recorded (collector ring too small for this batch?)")?;
    save_text(&ibox_obs::trace::to_chrome_json(trace_id, &name, &events), out)?;
    print_records(&result.records);
    println!(
        "trace {} ({} events) written to {out}",
        ibox_obs::trace::format_trace_id(trace_id),
        events.len()
    );
    println!("open https://ui.perfetto.dev and load the file to view the timeline");
    write_manifest(RunManifestBuilder::new("trace").config(&batch), out)?;
    Ok(())
}

/// The `ibox version` line: crate version plus the two on-disk schema
/// versions peers need for compatibility checks.
fn version_line() -> String {
    format!(
        "ibox {} (model artifact schema {}, run manifest schema {})",
        env!("CARGO_PKG_VERSION"),
        ibox::MODEL_ARTIFACT_SCHEMA,
        ibox_obs::manifest::MANIFEST_SCHEMA,
    )
}

/// Record batch wall time and the measured speedup over serial execution
/// (sum of per-run `batch.run` spans ÷ wall time) as manifest gauges.
/// Timing lives in the manifest, never in the results JSON — results stay
/// byte-identical at any `--jobs`.
fn record_batch_timing(wall_s: f64, jobs: usize, runs: usize) {
    let registry = ibox_obs::global();
    let effective = if jobs == 0 { ibox::suggested_jobs() } else { jobs }.min(runs).max(1);
    registry.gauge("batch.wall_time_s").set(wall_s);
    registry.gauge("batch.jobs").set(effective as f64);
    let serial_s =
        registry.snapshot().spans.get("batch.run").map(|s| s.total_ns as f64 / 1e9).unwrap_or(0.0);
    if wall_s > 0.0 && serial_s > 0.0 {
        let speedup = serial_s / wall_s;
        registry.gauge("batch.speedup_x").set(speedup);
        ibox_obs::info!(
            "batch: {runs} runs in {wall_s:.2}s at {effective} worker(s) — {speedup:.2}x vs serial"
        );
    }
}

fn print_records(records: &[RunRecord]) {
    println!(
        "{:<10} {:<24} {:<8} {:>6} {:>11} {:>9} {:>7} {:>9}",
        "id", "model", "proto", "seed", "rate(Mbps)", "p95(ms)", "loss%", "reorder"
    );
    for r in records {
        println!(
            "{:<10} {:<24} {:<8} {:>6} {:>11.3} {:>9.1} {:>7.2} {:>9.4}",
            r.id,
            r.model,
            r.protocol,
            r.seed,
            r.metrics.avg_rate_mbps,
            r.metrics.p95_delay_ms,
            r.metrics.loss_pct,
            r.metrics.mean_reorder_rate
        );
    }
}

fn print_metrics(trace: &ibox_trace::FlowTrace) {
    let m = TraceMetrics::of(trace);
    println!("packets       : {}", trace.len());
    println!("avg rate      : {:.3} Mbps", m.avg_rate_mbps);
    println!("p95 delay     : {:.1} ms", m.p95_delay_ms);
    println!("loss          : {:.2} %", m.loss_pct);
    println!("reordering    : {:.4} (mean per-1s-window rate)", m.mean_reorder_rate);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn help_succeeds() {
        assert!(dispatch(&argv(&["help"])).is_ok());
    }

    #[test]
    fn usage_covers_every_command() {
        let u = usage();
        for cmd in [
            "fit", "replay", "simulate", "metrics", "synth", "validity", "batch", "serve", "call",
            "ingest", "trace", "version",
        ] {
            assert!(u.contains(&format!("ibox {cmd}")), "usage must mention {cmd}:\n{u}");
        }
        assert!(u.contains("--jobs <N>"), "{u}");
        assert!(u.contains("--model-cache <dir>"), "{u}");
        assert!(u.contains("--addr <host:port>"), "{u}");
        assert!(u.contains("--session <id>"), "{u}");
    }

    #[test]
    fn ingest_argument_errors_are_reported_without_a_daemon() {
        // Grammar-level failures must not require a live server.
        assert!(dispatch(&argv(&["ingest"])).is_err());
        let err = dispatch(&argv(&["ingest", "shred"])).unwrap_err();
        assert!(err.contains("unknown ingest action"), "{err}");
        let err = dispatch(&argv(&["ingest", "append", "t.json"])).unwrap_err();
        assert!(err.contains("--session"), "{err}");
        let err = dispatch(&argv(&["ingest", "finalize"])).unwrap_err();
        assert!(err.contains("--session"), "{err}");
    }

    #[test]
    fn version_reports_crate_and_schema_versions() {
        let line = version_line();
        assert!(line.starts_with(&format!("ibox {}", env!("CARGO_PKG_VERSION"))), "{line}");
        assert!(
            line.contains(&format!("model artifact schema {}", ibox::MODEL_ARTIFACT_SCHEMA)),
            "{line}"
        );
        assert!(
            line.contains(&format!("run manifest schema {}", ibox_obs::manifest::MANIFEST_SCHEMA)),
            "{line}"
        );
        // Both spellings reach the same code path.
        assert!(dispatch(&argv(&["version"])).is_ok());
        assert!(dispatch(&argv(&["--version"])).is_ok());
    }

    #[test]
    fn mistyped_flag_is_rejected_not_swallowed() {
        // `--no-crossx trace.json` must error, not treat the trace path as
        // the value of an invented option (the old parser's behaviour).
        let err = dispatch(&argv(&["fit", "--no-crossx", "whatever.json"])).unwrap_err();
        assert!(err.contains("unknown option --no-crossx"), "{err}");
        assert!(err.contains("did you mean `--no-cross`?"), "{err}");
    }

    #[test]
    fn full_pipeline_synth_fit_simulate() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("ibox_cli_e2e_trace.json").to_string_lossy().into_owned();
        let profile_path = dir.join("ibox_cli_e2e_profile.json").to_string_lossy().into_owned();
        let out_path = dir.join("ibox_cli_e2e_out.csv").to_string_lossy().into_owned();

        dispatch(&argv(&[
            "synth",
            "--profile",
            "india-cellular",
            "--protocol",
            "cubic",
            "--duration",
            "5",
            "--seed",
            "3",
            "-o",
            &trace_path,
        ]))
        .unwrap();
        dispatch(&argv(&["fit", &trace_path, "-o", &profile_path])).unwrap();
        dispatch(&argv(&[
            "simulate",
            &profile_path,
            "--protocol",
            "vegas",
            "--duration",
            "5",
            "--seed",
            "11",
            "-o",
            &out_path,
        ]))
        .unwrap();
        dispatch(&argv(&["metrics", &out_path])).unwrap();

        // Every command with an output wrote a manifest next to it; the
        // simulate manifest carries the engine's per-run metrics.
        let manifest_path = RunManifest::path_for_output(Path::new(&out_path));
        let text = std::fs::read_to_string(&manifest_path).unwrap();
        let manifest: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(manifest.schema, ibox_obs::manifest::MANIFEST_SCHEMA);
        assert_eq!(manifest.command, "simulate");
        assert_eq!(manifest.seed, Some(11));
        assert!(manifest.config_hash.is_some());
        assert!(
            manifest.metrics.len() >= 10,
            "expected a rich snapshot, got {} metrics",
            manifest.metrics.len()
        );
        assert!(manifest.metrics.counters["sim.events_processed"] > 0);
        assert!(manifest.metrics.counters["sim.packets_delivered"] > 0);
        assert!(manifest.metrics.gauges["sim.events_per_sec"] > 0.0);
        assert!(manifest.metrics.spans.contains_key("estimate.static_params"));

        let fit_manifest = RunManifest::path_for_output(Path::new(&profile_path));
        assert!(fit_manifest.exists());

        for p in [&trace_path, &profile_path, &out_path] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(RunManifest::path_for_output(Path::new(p)));
        }
    }

    #[test]
    fn batch_command_is_deterministic_across_jobs() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("ibox_cli_batch_spec.json").to_string_lossy().into_owned();
        let out1 = dir.join("ibox_cli_batch_j1.json").to_string_lossy().into_owned();
        let out4 = dir.join("ibox_cli_batch_j4.json").to_string_lossy().into_owned();

        let mut b = BatchSpec::builder().jobs(1);
        for i in 0..4u64 {
            b = b.run(
                RunSpec::builder()
                    .synth("ethernet", "cubic", 50 + i)
                    .protocol(if i % 2 == 0 { "vegas" } else { "reno" })
                    .duration_s(3.0)
                    .seed(i)
                    .build()
                    .unwrap(),
            );
        }
        std::fs::write(&spec_path, b.build().unwrap().to_json()).unwrap();

        dispatch(&argv(&["batch", &spec_path, "--jobs", "1", "-o", &out1])).unwrap();
        dispatch(&argv(&["batch", &spec_path, "--jobs", "4", "-o", &out4])).unwrap();

        let r1 = std::fs::read_to_string(&out1).unwrap();
        let r4 = std::fs::read_to_string(&out4).unwrap();
        assert_eq!(r1, r4, "batch results must be byte-identical at any --jobs");
        assert!(ibox::BatchResult::from_json(&r1).unwrap().records.len() == 4);

        // The manifest records wall time and the measured speedup.
        let manifest_path = RunManifest::path_for_output(Path::new(&out4));
        let manifest: RunManifest =
            serde_json::from_str(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
        assert_eq!(manifest.command, "batch");
        assert!(manifest.metrics.gauges["batch.wall_time_s"] > 0.0);
        assert!(manifest.metrics.gauges["batch.speedup_x"] > 0.0);

        for p in [&spec_path, &out1, &out4] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(RunManifest::path_for_output(Path::new(p)));
        }
    }

    #[test]
    fn simulate_runs_flag_produces_a_replay_ensemble() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("ibox_cli_runs_trace.json").to_string_lossy().into_owned();
        let profile_path = dir.join("ibox_cli_runs_profile.json").to_string_lossy().into_owned();
        let out_path = dir.join("ibox_cli_runs_out.json").to_string_lossy().into_owned();

        dispatch(&argv(&[
            "synth",
            "--profile",
            "ethernet",
            "--protocol",
            "cubic",
            "--duration",
            "3",
            "-o",
            &trace_path,
        ]))
        .unwrap();
        dispatch(&argv(&["fit", &trace_path, "-o", &profile_path])).unwrap();
        dispatch(&argv(&[
            "simulate",
            &profile_path,
            "--protocol",
            "vegas",
            "--duration",
            "3",
            "--runs",
            "3",
            "--jobs",
            "2",
            "-o",
            &out_path,
        ]))
        .unwrap();

        let result =
            ibox::BatchResult::from_json(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(result.records.len(), 3);
        // Consecutive seeds from the base seed (default 1).
        assert_eq!(result.records.iter().map(|r| r.seed).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(result.records.iter().all(|r| r.model == "profile replay"));

        for p in [&trace_path, &profile_path, &out_path] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(RunManifest::path_for_output(Path::new(p)));
        }
    }

    #[test]
    fn fit_rejects_missing_file() {
        assert!(dispatch(&argv(&["fit", "/nope/missing.json"])).is_err());
    }

    #[test]
    fn fit_rejects_conflicting_model_flags() {
        let err =
            dispatch(&argv(&["fit", "--model", "iboxml", "--no-cross", "t.json"])).unwrap_err();
        assert!(err.contains("only apply to the iboxnet model"), "{err}");
        let err = dispatch(&argv(&["fit", "--model", "magic", "t.json"])).unwrap_err();
        assert!(err.contains("unknown model kind"), "{err}");
    }

    #[test]
    fn replay_reports_typed_errors_with_the_path() {
        let err =
            dispatch(&argv(&["replay", "/nope/model.json", "--protocol", "cubic"])).unwrap_err();
        assert!(err.contains("/nope/model.json"), "{err}");
    }

    #[test]
    fn fit_then_replay_is_deterministic_across_reloads() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("ibox_cli_replay_trace.json").to_string_lossy().into_owned();
        let model_path = dir.join("ibox_cli_replay_model.json").to_string_lossy().into_owned();
        let out1 = dir.join("ibox_cli_replay_out1.json").to_string_lossy().into_owned();
        let out2 = dir.join("ibox_cli_replay_out2.json").to_string_lossy().into_owned();

        dispatch(&argv(&[
            "synth",
            "--profile",
            "ethernet",
            "--protocol",
            "cubic",
            "--duration",
            "3",
            "-o",
            &trace_path,
        ]))
        .unwrap();
        dispatch(&argv(&["fit", &trace_path, "--model", "statistical-loss", "-o", &model_path]))
            .unwrap();

        // The written artifact is a versioned envelope around the fitted
        // model, and two separate loads replay byte-identically.
        let artifact = load_model(&model_path).unwrap();
        assert_eq!(artifact.schema, ibox::MODEL_ARTIFACT_SCHEMA);
        assert_eq!(artifact.kind, "Statistical loss");
        for out in [&out1, &out2] {
            dispatch(&argv(&[
                "replay",
                &model_path,
                "--protocol",
                "vegas",
                "--duration",
                "3",
                "--seed",
                "7",
                "-o",
                out,
            ]))
            .unwrap();
        }
        let t1 = std::fs::read_to_string(&out1).unwrap();
        let t2 = std::fs::read_to_string(&out2).unwrap();
        assert_eq!(t1, t2, "saved-then-loaded model must replay byte-identically");

        for p in [&trace_path, &model_path, &out1, &out2] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(RunManifest::path_for_output(Path::new(p)));
        }
    }

    #[test]
    fn replay_path_flag_replays_through_a_composed_chain() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("ibox_cli_path_trace.json").to_string_lossy().into_owned();
        let model_path = dir.join("ibox_cli_path_model.json").to_string_lossy().into_owned();
        let chain_path = dir.join("ibox_cli_path_chain.json").to_string_lossy().into_owned();
        let out_flat = dir.join("ibox_cli_path_flat.json").to_string_lossy().into_owned();
        let out_chain = dir.join("ibox_cli_path_chain_out.json").to_string_lossy().into_owned();
        let out_chain2 = dir.join("ibox_cli_path_chain_out2.json").to_string_lossy().into_owned();

        dispatch(&argv(&[
            "synth",
            "--profile",
            "ethernet",
            "--protocol",
            "cubic",
            "--duration",
            "3",
            "-o",
            &trace_path,
        ]))
        .unwrap();
        dispatch(&argv(&["fit", &trace_path, "-o", &model_path])).unwrap();
        std::fs::write(
            &chain_path,
            r#"[{"rate_bps":20e6,"prop_delay_ms":5,"buffer_bytes":80000},
                {"rate_bps":8e6,"prop_delay_ms":12,"buffer_bytes":60000}]"#,
        )
        .unwrap();

        let replay = |out: &str, extra: &[&str]| {
            let mut args =
                vec!["replay", &model_path, "--protocol", "cubic", "--duration", "3", "-o", out];
            args.extend_from_slice(extra);
            dispatch(&argv(&args)).unwrap();
        };
        replay(&out_flat, &[]);
        replay(&out_chain, &["--path", &chain_path]);
        replay(&out_chain2, &["--path", &chain_path]);

        let flat = std::fs::read_to_string(&out_flat).unwrap();
        let chain = std::fs::read_to_string(&out_chain).unwrap();
        assert_ne!(flat, chain, "the composed path must change the replay");
        assert_eq!(
            chain,
            std::fs::read_to_string(&out_chain2).unwrap(),
            "composed replay must be deterministic"
        );

        // Bad path files are typed errors, not panics.
        let err = dispatch(&argv(&[
            "replay",
            &model_path,
            "--protocol",
            "cubic",
            "--path",
            "/nope/chain.json",
        ]))
        .unwrap_err();
        assert!(err.contains("/nope/chain.json"), "{err}");
        std::fs::write(&chain_path, "[]").unwrap();
        let err =
            dispatch(&argv(&["replay", &model_path, "--protocol", "cubic", "--path", &chain_path]))
                .unwrap_err();
        assert!(err.contains("at least one stage"), "{err}");

        for p in [&trace_path, &model_path, &chain_path, &out_flat, &out_chain, &out_chain2] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(RunManifest::path_for_output(Path::new(p)));
        }
    }

    #[test]
    fn batch_model_cache_persists_fits_across_invocations() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("ibox_cli_cache_spec.json").to_string_lossy().into_owned();
        let cache_dir = dir
            .join(format!("ibox_cli_cache_dir_{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let out1 = dir.join("ibox_cli_cache_out1.json").to_string_lossy().into_owned();
        let out2 = dir.join("ibox_cli_cache_out2.json").to_string_lossy().into_owned();
        let _ = std::fs::remove_dir_all(&cache_dir);

        let batch = BatchSpec::builder()
            .jobs(1)
            .run(
                RunSpec::builder()
                    .synth("ethernet", "cubic", 60)
                    .protocol("vegas")
                    .duration_s(3.0)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        std::fs::write(&spec_path, batch.to_json()).unwrap();

        dispatch(&argv(&["batch", &spec_path, "--model-cache", &cache_dir, "-o", &out1])).unwrap();
        let cached: Vec<_> = std::fs::read_dir(&cache_dir).unwrap().collect();
        assert_eq!(cached.len(), 1, "one fit ⇒ one cache entry on disk");

        dispatch(&argv(&["batch", &spec_path, "--model-cache", &cache_dir, "-o", &out2])).unwrap();
        assert_eq!(
            std::fs::read_to_string(&out1).unwrap(),
            std::fs::read_to_string(&out2).unwrap(),
            "a disk-cache hit must reproduce the fresh-fit results byte for byte"
        );

        let _ = std::fs::remove_dir_all(&cache_dir);
        for p in [&spec_path, &out1, &out2] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(RunManifest::path_for_output(Path::new(p)));
        }
    }

    #[test]
    fn trace_export_writes_perfetto_loadable_json() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("ibox_cli_trace_spec.json").to_string_lossy().into_owned();
        let out_path = dir.join("ibox_cli_trace_out.json").to_string_lossy().into_owned();

        let batch = BatchSpec::builder()
            .jobs(2)
            .run(
                RunSpec::builder()
                    .synth("ethernet", "cubic", 71)
                    .protocol("vegas")
                    .duration_s(3.0)
                    .build()
                    .unwrap(),
            )
            .run(
                RunSpec::builder()
                    .synth("ethernet", "cubic", 72)
                    .protocol("reno")
                    .duration_s(3.0)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        std::fs::write(&spec_path, batch.to_json()).unwrap();

        dispatch(&argv(&["trace", "export", &spec_path, "--timeline", "-o", &out_path])).unwrap();

        let text = std::fs::read_to_string(&out_path).unwrap();
        let value = serde_json::parse_value(&text).unwrap();
        assert!(value.get("traceEvents").and_then(|v| v.as_array()).is_some_and(|a| !a.is_empty()));
        for span in ["trace-export", "batch-run", "fit-cache", "model-fit", "job-0", "job-1"] {
            assert!(text.contains(&format!("\"{span}\"")), "span {span:?} missing");
        }
        // --timeline recorded the sim's counter track.
        assert!(text.contains("sim.queue_depth_bytes"), "timeline counter track missing");

        assert!(dispatch(&argv(&["trace", "import", &spec_path, "-o", &out_path])).is_err());

        for p in [&spec_path, &out_path] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(RunManifest::path_for_output(Path::new(p)));
        }
    }

    #[test]
    fn simulate_rejects_unknown_protocol() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("ibox_cli_proto_trace.json").to_string_lossy().into_owned();
        let profile_path = dir.join("ibox_cli_proto_profile.json").to_string_lossy().into_owned();
        dispatch(&argv(&[
            "synth",
            "--profile",
            "ethernet",
            "--protocol",
            "reno",
            "--duration",
            "3",
            "-o",
            &trace_path,
        ]))
        .unwrap();
        dispatch(&argv(&["fit", &trace_path, "-o", &profile_path])).unwrap();
        assert!(dispatch(&argv(&["simulate", &profile_path, "--protocol", "quic-quac"])).is_err());
        for p in [&trace_path, &profile_path] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(RunManifest::path_for_output(Path::new(p)));
        }
    }
}
