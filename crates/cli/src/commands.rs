//! Subcommand implementations.

use std::path::Path;

use ibox::{IBoxNet, ValidityRegion};
use ibox_obs::{RunManifest, RunManifestBuilder};
use ibox_sim::SimTime;
use ibox_testbed::pantheon::run_protocol;
use ibox_testbed::Profile;
use ibox_trace::metrics::TraceMetrics;

use crate::args::parse;
use crate::io::{load_trace, save_text, save_trace};

/// Usage text shown on errors.
pub const USAGE: &str = "usage:
  ibox fit <trace.{json,csv}> [-o profile.json] [--no-cross] [--with-reordering]
  ibox simulate <profile.json> --protocol <cubic|reno|vegas|bbr|rtc>
                [--duration S] [--seed N] [-o out.{json,csv}]
  ibox metrics <trace.{json,csv}>
  ibox synth --profile <india-cellular|india-cellular-pf|ethernet|token-bucket-wifi>
             --protocol <name> [--duration S] [--seed N] [-o trace.{json,csv}]
  ibox validity --train <trace>... --check <trace>

global flags: --verbose (debug diagnostics on stderr), --quiet (errors only);
the IBOX_LOG env var (off|error|warn|info|debug|trace) sets the default.
Commands with an output file also write a <output>.manifest.<ext> run
manifest (seed, config hash, git rev, metrics).";

/// Dispatch a full argv (starting at the subcommand).
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    // Verbosity flags apply to every subcommand; map them onto the
    // process-wide log filter before any command logic runs.
    let quiet = argv.iter().any(|a| a == "--quiet");
    let verbose = argv.iter().any(|a| a == "--verbose");
    ibox_obs::log::set_level_from_flags(quiet, verbose);

    let Some(cmd) = argv.first() else {
        return Err("no subcommand".into());
    };
    let rest = &argv[1..];
    ibox_obs::debug!("dispatching {cmd} {rest:?}");
    match cmd.as_str() {
        "fit" => cmd_fit(rest),
        "simulate" => cmd_simulate(rest),
        "metrics" => cmd_metrics(rest),
        "synth" => cmd_synth(rest),
        "validity" => cmd_validity(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Write the run manifest next to `out`, carrying the global registry
/// snapshot (the simulator folds each run's per-run metrics into it).
fn write_manifest(builder: RunManifestBuilder, out: &str) -> Result<(), String> {
    let manifest = builder.finish(ibox_obs::global().snapshot());
    let path = RunManifest::path_for_output(Path::new(out));
    manifest
        .write_to(&path)
        .map_err(|e| format!("cannot write manifest {}: {e}", path.display()))?;
    ibox_obs::info!("run manifest written to {}", path.display());
    Ok(())
}

fn cmd_fit(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let trace = load_trace(p.positional(0, "trace file")?)?;
    let model = if p.flag("--no-cross") {
        IBoxNet::fit_without_cross(&trace)
    } else if p.flag("--with-reordering") {
        IBoxNet::fit_with_reordering(&trace)
    } else {
        IBoxNet::fit(&trace)
    };
    println!("fitted iBoxNet profile from {} packets:", trace.len());
    println!("  bandwidth   : {:.3} Mbps", model.params.bandwidth_bps / 1e6);
    println!("  prop delay  : {:.2} ms", model.params.prop_delay.as_millis_f64());
    println!("  buffer      : {} bytes", model.params.buffer_bytes);
    println!("  cross bytes : {:.0}", model.cross.total_bytes());
    if let Some(r) = &model.reorder {
        println!(
            "  reordering  : p={:.4}, extra {:.1}-{:.1} ms",
            r.probability,
            r.extra_min.as_millis_f64(),
            r.extra_max.as_millis_f64()
        );
    }
    if let Some(out) = p.opt("-o") {
        save_text(&model.to_json(), out)?;
        ibox_obs::info!("profile written to {out}");
        write_manifest(RunManifestBuilder::new("fit").config(&model), out)?;
    }
    Ok(())
}

fn cmd_simulate(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let builder = RunManifestBuilder::new("simulate");
    let profile_text = std::fs::read_to_string(p.positional(0, "profile file")?)
        .map_err(|e| format!("cannot read profile: {e}"))?;
    let model = IBoxNet::from_json(&profile_text).map_err(|e| format!("bad profile: {e}"))?;
    let protocol = p.required("--protocol")?;
    if ibox_cc::by_name(protocol).is_none() {
        return Err(format!("unknown protocol {protocol:?}"));
    }
    let duration = SimTime::from_secs_f64(p.num("--duration", 30.0f64)?);
    let seed = p.num("--seed", 1u64)?;
    let trace = model.simulate(protocol, duration, seed);
    print_metrics(&trace);
    if let Some(out) = p.opt("-o") {
        save_trace(&trace, out)?;
        ibox_obs::info!("counterfactual trace written to {out}");
        write_manifest(builder.seed(seed).config(&model), out)?;
    }
    Ok(())
}

fn cmd_metrics(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let trace = load_trace(p.positional(0, "trace file")?)?;
    print_metrics(&trace);
    Ok(())
}

fn cmd_synth(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let builder = RunManifestBuilder::new("synth");
    let profile = match p.required("--profile")? {
        "india-cellular" => Profile::IndiaCellular,
        "india-cellular-pf" => Profile::IndiaCellularPf,
        "ethernet" => Profile::Ethernet,
        "token-bucket-wifi" => Profile::TokenBucketWifi,
        other => return Err(format!("unknown profile {other:?}")),
    };
    let protocol = p.required("--protocol")?;
    if ibox_cc::by_name(protocol).is_none() {
        return Err(format!("unknown protocol {protocol:?}"));
    }
    let duration = SimTime::from_secs_f64(p.num("--duration", 30.0f64)?);
    let seed = p.num("--seed", 1u64)?;
    let inst = profile.sample(seed, duration);
    let trace = run_protocol(&inst, protocol, duration, seed);
    print_metrics(&trace);
    if let Some(out) = p.opt("-o") {
        save_trace(&trace, out)?;
        ibox_obs::info!("trace written to {out}");
        write_manifest(builder.seed(seed).config(&inst.path), out)?;
    }
    Ok(())
}

fn cmd_validity(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    // `--train` takes one value in the generic parser; extra training
    // traces come as positionals before --check's value.
    let mut train_paths: Vec<&str> = Vec::new();
    if let Some(t) = p.opt("--train") {
        train_paths.push(t);
    }
    for extra in &p.positional {
        train_paths.push(extra);
    }
    if train_paths.is_empty() {
        return Err("validity needs --train <trace> [more traces…]".into());
    }
    let check_path = p.required("--check")?;
    let train: Result<Vec<_>, _> = train_paths.iter().map(|t| load_trace(t)).collect();
    let region = ValidityRegion::fit(&train?);
    let report = region.check(&load_trace(check_path)?);
    println!("coverage: {:.3}", report.coverage);
    for (feature, frac) in &report.out_of_range {
        println!("  out of range: {feature} ({:.1}% of packets)", frac * 100.0);
    }
    println!("valid at 0.95: {}", report.is_valid(0.95));
    Ok(())
}

fn print_metrics(trace: &ibox_trace::FlowTrace) {
    let m = TraceMetrics::of(trace);
    println!("packets       : {}", trace.len());
    println!("avg rate      : {:.3} Mbps", m.avg_rate_mbps);
    println!("p95 delay     : {:.1} ms", m.p95_delay_ms);
    println!("loss          : {:.2} %", m.loss_pct);
    println!("reordering    : {:.4} (mean per-1s-window rate)", m.mean_reorder_rate);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn help_succeeds() {
        assert!(dispatch(&argv(&["help"])).is_ok());
    }

    #[test]
    fn full_pipeline_synth_fit_simulate() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("ibox_cli_e2e_trace.json").to_string_lossy().into_owned();
        let profile_path = dir.join("ibox_cli_e2e_profile.json").to_string_lossy().into_owned();
        let out_path = dir.join("ibox_cli_e2e_out.csv").to_string_lossy().into_owned();

        dispatch(&argv(&[
            "synth",
            "--profile",
            "india-cellular",
            "--protocol",
            "cubic",
            "--duration",
            "5",
            "--seed",
            "3",
            "-o",
            &trace_path,
        ]))
        .unwrap();
        dispatch(&argv(&["fit", &trace_path, "-o", &profile_path])).unwrap();
        dispatch(&argv(&[
            "simulate",
            &profile_path,
            "--protocol",
            "vegas",
            "--duration",
            "5",
            "--seed",
            "11",
            "-o",
            &out_path,
        ]))
        .unwrap();
        dispatch(&argv(&["metrics", &out_path])).unwrap();

        // Every command with an output wrote a manifest next to it; the
        // simulate manifest carries the engine's per-run metrics.
        let manifest_path = RunManifest::path_for_output(Path::new(&out_path));
        let text = std::fs::read_to_string(&manifest_path).unwrap();
        let manifest: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(manifest.schema, ibox_obs::manifest::MANIFEST_SCHEMA);
        assert_eq!(manifest.command, "simulate");
        assert_eq!(manifest.seed, Some(11));
        assert!(manifest.config_hash.is_some());
        assert!(
            manifest.metrics.len() >= 10,
            "expected a rich snapshot, got {} metrics",
            manifest.metrics.len()
        );
        assert!(manifest.metrics.counters["sim.events_processed"] > 0);
        assert!(manifest.metrics.counters["sim.packets_delivered"] > 0);
        assert!(manifest.metrics.gauges["sim.events_per_sec"] > 0.0);
        assert!(manifest.metrics.spans.contains_key("estimate.static_params"));

        let fit_manifest = RunManifest::path_for_output(Path::new(&profile_path));
        assert!(fit_manifest.exists());

        for p in [&trace_path, &profile_path, &out_path] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(RunManifest::path_for_output(Path::new(p)));
        }
    }

    #[test]
    fn fit_rejects_missing_file() {
        assert!(dispatch(&argv(&["fit", "/nope/missing.json"])).is_err());
    }

    #[test]
    fn simulate_rejects_unknown_protocol() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("ibox_cli_proto_trace.json").to_string_lossy().into_owned();
        let profile_path = dir.join("ibox_cli_proto_profile.json").to_string_lossy().into_owned();
        dispatch(&argv(&[
            "synth",
            "--profile",
            "ethernet",
            "--protocol",
            "reno",
            "--duration",
            "3",
            "-o",
            &trace_path,
        ]))
        .unwrap();
        dispatch(&argv(&["fit", &trace_path, "-o", &profile_path])).unwrap();
        assert!(dispatch(&argv(&["simulate", &profile_path, "--protocol", "quic-quac"])).is_err());
        for p in [&trace_path, &profile_path] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(RunManifest::path_for_output(Path::new(p)));
        }
    }
}
