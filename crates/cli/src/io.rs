//! Trace/profile file I/O with format detection by extension.

use std::fs;
use std::path::Path;

use ibox_trace::{from_csv, to_csv, FlowMeta, FlowTrace};

/// Load a single-flow trace from `.json` or `.csv`.
pub fn load_trace(path: &str) -> Result<FlowTrace, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    match extension(path) {
        "json" => serde_json::from_str(&text).map_err(|e| format!("bad JSON in {path}: {e}")),
        "csv" => {
            let meta = FlowMeta::new(path, "unknown", "imported");
            from_csv(&text, meta).map_err(|e| format!("bad CSV in {path}: {e}"))
        }
        other => Err(format!("unsupported trace extension {other:?} (use .json or .csv)")),
    }
}

/// Save a trace as `.json` or `.csv`.
pub fn save_trace(trace: &FlowTrace, path: &str) -> Result<(), String> {
    let text = match extension(path) {
        "json" => serde_json::to_string(trace).expect("trace serialization cannot fail"),
        "csv" => to_csv(trace),
        other => return Err(format!("unsupported output extension {other:?} (use .json or .csv)")),
    };
    fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Write any string artifact.
pub fn save_text(text: &str, path: &str) -> Result<(), String> {
    fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Load a fitted model: either a versioned [`ibox::ModelArtifact`]
/// envelope or a legacy bare iBoxNet profile. Failures come back as one
/// sentence naming the offending file (and, on version skew, both schema
/// versions) — never a panic.
pub fn load_model(path: &str) -> Result<ibox::ModelArtifact, String> {
    ibox::ModelArtifact::load_flexible(Path::new(path)).map_err(|e| e.to_string())
}

fn extension(path: &str) -> &str {
    Path::new(path).extension().and_then(|e| e.to_str()).unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibox_trace::PacketRecord;

    fn tmp(name: &str) -> String {
        std::env::temp_dir().join(name).to_string_lossy().into_owned()
    }

    fn sample() -> FlowTrace {
        FlowTrace::from_records(
            FlowMeta::new("p", "cubic", "0"),
            vec![
                PacketRecord::delivered(0, 0, 1400, 40_000_000),
                PacketRecord::lost(1, 1_000_000, 1400),
            ],
        )
    }

    #[test]
    fn json_roundtrip_via_files() {
        let path = tmp("ibox_cli_test_trace.json");
        save_trace(&sample(), &path).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back, sample());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn csv_roundtrip_via_files() {
        let path = tmp("ibox_cli_test_trace.csv");
        save_trace(&sample(), &path).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back.records(), sample().records());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn unknown_extension_rejected() {
        assert!(load_trace("trace.pcap").is_err());
        assert!(save_trace(&sample(), "x.yaml").is_err());
    }

    #[test]
    fn missing_file_reports_path() {
        let err = load_trace("/nonexistent/trace.json").unwrap_err();
        assert!(err.contains("/nonexistent/trace.json"));
    }

    #[test]
    fn load_model_reports_path_on_malformed_json() {
        let path = tmp("ibox_cli_test_bad_model.json");
        fs::write(&path, "{ this is not a model").unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(err.contains(&path), "error must name the file: {err}");
        assert!(err.contains("malformed"), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_model_reports_both_schema_versions_on_skew() {
        let path = tmp("ibox_cli_test_future_model.json");
        fs::write(&path, r#"{"schema": 999, "kind": "iBoxNet"}"#).unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(err.contains(&path), "{err}");
        assert!(err.contains("999"), "must name the file's version: {err}");
        assert!(
            err.contains(&ibox::MODEL_ARTIFACT_SCHEMA.to_string()),
            "must name the supported version: {err}"
        );
        let _ = fs::remove_file(&path);
    }
}
