//! Property-based tests for the trace data model and its series/metrics.

use proptest::prelude::*;

use ibox_trace::metrics::{avg_rate_mbps, delay_percentile_ms, reordering_rates};
use ibox_trace::series::{peak_recv_rate_bps, send_rate_series, trailing_send_rate};
use ibox_trace::{FlowMeta, FlowTrace, PacketRecord};

/// Strategy: a plausible random trace (sorted send times, delays, losses).
fn arb_trace() -> impl Strategy<Value = FlowTrace> {
    prop::collection::vec(
        (
            0u64..30_000,              // send offset, ms
            100u32..1500,              // size
            1u64..500,                 // delay, ms
            prop::bool::weighted(0.9), // delivered?
        ),
        1..200,
    )
    .prop_map(|mut raw| {
        raw.sort_by_key(|(t, _, _, _)| *t);
        let records = raw
            .into_iter()
            .enumerate()
            .map(|(i, (t_ms, size, d_ms, delivered))| {
                let send = t_ms * 1_000_000;
                if delivered {
                    PacketRecord::delivered(i as u64, send, size, send + d_ms * 1_000_000)
                } else {
                    PacketRecord::lost(i as u64, send, size)
                }
            })
            .collect();
        FlowTrace::from_records(FlowMeta::default(), records)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The peak sliding-window receive rate is an upper bound on any
    /// fixed-window rate and at least the long-run average.
    #[test]
    fn peak_rate_dominates(trace in arb_trace()) {
        prop_assume!(trace.delivered_count() > 1);
        let peak = peak_recv_rate_bps(&trace, 1.0);
        let span = trace.span_secs();
        prop_assume!(span > 1.0);
        let avg = trace.bytes_delivered() as f64 * 8.0 / span;
        prop_assert!(peak + 1e-6 >= avg, "peak {peak} < avg {avg}");
    }

    /// Normalization is idempotent and preserves counts, delays, metrics.
    #[test]
    fn normalization_is_idempotent(trace in arb_trace()) {
        let once = trace.normalized();
        let twice = once.normalized();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once.len(), trace.len());
        prop_assert_eq!(once.lost_count(), trace.lost_count());
        prop_assert_eq!(once.min_delay_ns(), trace.min_delay_ns());
        prop_assert_eq!(once.max_delay_ns(), trace.max_delay_ns());
    }

    /// Percentiles are monotone in q and bracketed by min/max delay.
    #[test]
    fn delay_percentiles_are_monotone(trace in arb_trace()) {
        prop_assume!(trace.delivered_count() > 0);
        let mut last = 0.0f64;
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            let p = delay_percentile_ms(&trace, q).unwrap();
            prop_assert!(p + 1e-9 >= last, "percentile not monotone at {q}");
            last = p;
        }
        let min = trace.min_delay_ns().unwrap() as f64 / 1e6;
        let max = trace.max_delay_ns().unwrap() as f64 / 1e6;
        prop_assert!((delay_percentile_ms(&trace, 0.0).unwrap() - min).abs() < 1e-6);
        prop_assert!((delay_percentile_ms(&trace, 1.0).unwrap() - max).abs() < 1e-6);
    }

    /// Reordering rates live in [0, 1] per window.
    #[test]
    fn reordering_rates_are_fractions(trace in arb_trace()) {
        for r in reordering_rates(&trace, 1.0) {
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }

    /// The fixed-window send-rate series accounts for every sent byte.
    #[test]
    fn send_rate_series_conserves_bytes(trace in arb_trace()) {
        prop_assume!(!trace.is_empty());
        let s = send_rate_series(&trace, 1.0);
        let total: f64 = s.v.iter().map(|bps| bps / 8.0).sum(); // bytes (1 s windows)
        prop_assert!(
            (total - trace.bytes_sent() as f64).abs() < 1.0,
            "windows sum {total} vs sent {}",
            trace.bytes_sent()
        );
    }

    /// The trailing send-rate feature is positive and bounded by the
    /// whole-trace burst ceiling.
    #[test]
    fn trailing_rate_is_sane(trace in arb_trace()) {
        prop_assume!(!trace.is_empty());
        let rates = trailing_send_rate(&trace, 1.0);
        prop_assert_eq!(rates.len(), trace.len());
        let ceiling = trace.bytes_sent() as f64 * 8.0; // all bytes in one window
        for r in rates {
            prop_assert!(r > 0.0 && r <= ceiling + 1.0);
        }
    }

    /// avg_rate is nonnegative and zero only for empty/zero-span traces.
    #[test]
    fn avg_rate_nonnegative(trace in arb_trace()) {
        prop_assert!(avg_rate_mbps(&trace) >= 0.0);
    }

    /// JSON serde roundtrips any trace exactly.
    #[test]
    fn serde_roundtrip(trace in arb_trace()) {
        let json = serde_json::to_string(&trace).unwrap();
        let back: FlowTrace = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(trace, back);
    }
}
