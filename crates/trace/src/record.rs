//! A single packet's input-output record.

use serde::{Deserialize, Serialize};

use crate::time::ns_to_secs;

/// The input-output record of one packet on a network path.
///
/// iBox's problem formulation (§2 of the paper) expresses end-to-end
/// behaviour purely as per-packet delay: each packet enters the path at
/// `send_ns` and leaves it at `recv_ns`; loss is "infinite delay", which we
/// encode as `recv_ns == None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Monotone per-flow sequence number assigned at the sender.
    pub seq: u64,
    /// Time the packet entered the path (sender-side), nanoseconds.
    pub send_ns: u64,
    /// Packet size in bytes (including headers; iBox does not distinguish).
    pub size: u32,
    /// Time the packet left the path (receiver-side), nanoseconds.
    /// `None` means the packet was lost.
    pub recv_ns: Option<u64>,
}

impl PacketRecord {
    /// A delivered packet.
    pub fn delivered(seq: u64, send_ns: u64, size: u32, recv_ns: u64) -> Self {
        debug_assert!(recv_ns >= send_ns, "packet received before it was sent");
        Self { seq, send_ns, size, recv_ns: Some(recv_ns) }
    }

    /// A lost packet.
    pub fn lost(seq: u64, send_ns: u64, size: u32) -> Self {
        Self { seq, send_ns, size, recv_ns: None }
    }

    /// Whether the packet was lost.
    #[inline]
    pub fn is_lost(&self) -> bool {
        self.recv_ns.is_none()
    }

    /// One-way delay in nanoseconds, or `None` if the packet was lost.
    #[inline]
    pub fn delay_ns(&self) -> Option<u64> {
        self.recv_ns.map(|r| r.saturating_sub(self.send_ns))
    }

    /// One-way delay in seconds, or `None` if the packet was lost.
    #[inline]
    pub fn delay_secs(&self) -> Option<f64> {
        self.delay_ns().map(ns_to_secs)
    }

    /// One-way delay in milliseconds, or `None` if the packet was lost.
    #[inline]
    pub fn delay_ms(&self) -> Option<f64> {
        self.delay_ns().map(|d| d as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MILLIS;

    #[test]
    fn delivered_packet_has_delay() {
        let p = PacketRecord::delivered(7, 1_000, 1500, 1_000 + 40 * MILLIS);
        assert!(!p.is_lost());
        assert_eq!(p.delay_ns(), Some(40 * MILLIS));
        assert_eq!(p.delay_ms(), Some(40.0));
        assert_eq!(p.delay_secs(), Some(0.040));
    }

    #[test]
    fn lost_packet_has_no_delay() {
        let p = PacketRecord::lost(3, 5_000, 1200);
        assert!(p.is_lost());
        assert_eq!(p.delay_ns(), None);
        assert_eq!(p.delay_ms(), None);
    }

    #[test]
    fn serde_roundtrip() {
        let p = PacketRecord::delivered(1, 2, 3, 4);
        let json = serde_json::to_string(&p).unwrap();
        let back: PacketRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
