//! CSV interchange for traces.
//!
//! JSON is the native artifact format, but real packet traces usually
//! arrive as flat per-packet tables (tcpdump post-processing, Pantheon
//! logs, spreadsheet exports). This module reads and writes a minimal
//! four-column CSV so external traces can flow into the estimators:
//!
//! ```csv
//! seq,send_ns,size,recv_ns
//! 0,0,1400,31400000
//! 1,1400000,1400,32800000
//! 2,2800000,1400,          # empty recv_ns = lost
//! ```

use std::fmt::Write as _;

use crate::flow::{FlowMeta, FlowTrace};
use crate::record::PacketRecord;

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The header row is missing or has the wrong columns.
    BadHeader(String),
    /// A data row failed to parse (1-based line number and reason).
    BadRow(usize, String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader(h) => write!(f, "bad CSV header: {h:?}"),
            CsvError::BadRow(line, why) => write!(f, "bad CSV row at line {line}: {why}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Expected header.
pub const CSV_HEADER: &str = "seq,send_ns,size,recv_ns";

/// Serialize a trace to CSV (header + one row per packet).
pub fn to_csv(trace: &FlowTrace) -> String {
    let mut out = String::with_capacity(trace.len() * 24 + 32);
    let _ = writeln!(out, "{CSV_HEADER}");
    for r in trace.records() {
        match r.recv_ns {
            Some(recv) => {
                let _ = writeln!(out, "{},{},{},{}", r.seq, r.send_ns, r.size, recv);
            }
            None => {
                let _ = writeln!(out, "{},{},{},", r.seq, r.send_ns, r.size);
            }
        }
    }
    out
}

/// Parse a trace from CSV. `meta` labels the result (CSV carries no
/// metadata). Blank lines are skipped; a `#` prefix marks a comment.
pub fn from_csv(text: &str, meta: FlowMeta) -> Result<FlowTrace, CsvError> {
    let mut lines = text.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((_, l)) if l.trim().is_empty() || l.trim_start().starts_with('#') => continue,
            Some((_, l)) => break l,
            None => return Err(CsvError::BadHeader("<empty input>".into())),
        }
    };
    if header.trim() != CSV_HEADER {
        return Err(CsvError::BadHeader(header.to_string()));
    }
    let mut records = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = trimmed.split(',').collect();
        if cols.len() != 4 {
            return Err(CsvError::BadRow(line_no, format!("{} columns", cols.len())));
        }
        let parse_u64 = |s: &str, what: &str| {
            s.trim().parse::<u64>().map_err(|e| CsvError::BadRow(line_no, format!("{what}: {e}")))
        };
        let seq = parse_u64(cols[0], "seq")?;
        let send_ns = parse_u64(cols[1], "send_ns")?;
        let size = parse_u64(cols[2], "size")? as u32;
        let recv = cols[3].trim();
        let rec = if recv.is_empty() {
            PacketRecord::lost(seq, send_ns, size)
        } else {
            let recv_ns = parse_u64(recv, "recv_ns")?;
            if recv_ns < send_ns {
                return Err(CsvError::BadRow(
                    line_no,
                    format!("recv_ns {recv_ns} precedes send_ns {send_ns}"),
                ));
            }
            PacketRecord::delivered(seq, send_ns, size, recv_ns)
        };
        records.push(rec);
    }
    Ok(FlowTrace::from_records(meta, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlowTrace {
        FlowTrace::from_records(
            FlowMeta::new("p", "cubic", "r0"),
            vec![
                PacketRecord::delivered(0, 0, 1400, 31_400_000),
                PacketRecord::lost(1, 1_400_000, 1400),
                PacketRecord::delivered(2, 2_800_000, 700, 40_000_000),
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let csv = to_csv(&t);
        let back = from_csv(&csv, t.meta.clone()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn lost_packets_have_empty_recv() {
        let csv = to_csv(&sample());
        assert!(csv.lines().nth(2).unwrap().ends_with(','));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "\n# a comment\nseq,send_ns,size,recv_ns\n0,0,100,500\n\n# more\n1,10,100,\n";
        let t = from_csv(text, FlowMeta::default()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.lost_count(), 1);
    }

    #[test]
    fn bad_header_is_rejected() {
        let err = from_csv("a,b,c\n", FlowMeta::default()).unwrap_err();
        assert!(matches!(err, CsvError::BadHeader(_)));
    }

    #[test]
    fn bad_rows_are_located() {
        let text = "seq,send_ns,size,recv_ns\n0,0,100,500\nnope,0,100,\n";
        match from_csv(text, FlowMeta::default()) {
            Err(CsvError::BadRow(line, why)) => {
                assert_eq!(line, 3);
                assert!(why.contains("seq"));
            }
            other => panic!("expected BadRow, got {other:?}"),
        }
    }

    #[test]
    fn causality_violations_are_rejected() {
        let text = "seq,send_ns,size,recv_ns\n0,1000,100,500\n";
        let err = from_csv(text, FlowMeta::default()).unwrap_err();
        assert!(matches!(err, CsvError::BadRow(2, _)));
    }

    #[test]
    fn wrong_column_count_is_rejected() {
        let text = "seq,send_ns,size,recv_ns\n0,0,100\n";
        assert!(matches!(from_csv(text, FlowMeta::default()), Err(CsvError::BadRow(2, _))));
    }
}
