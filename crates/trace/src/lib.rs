//! # ibox-trace
//!
//! Packet-trace data model for the iBox reproduction.
//!
//! iBox ("Internet in a Box", HotNets '20) turns *input-output packet
//! traces* of a network path into simulation models. This crate defines the
//! canonical trace representation shared by every other crate in the
//! workspace:
//!
//! * [`PacketRecord`] — one packet: send timestamp, size, and (optional)
//!   receive timestamp. A lost packet is a record with no receive timestamp
//!   (the paper models loss as "infinite delay").
//! * [`FlowTrace`] — the input-output trace of one flow: an ordered sequence
//!   of [`PacketRecord`]s plus metadata.
//! * [`TraceDataset`] — a collection of flow traces (e.g. a Pantheon-like
//!   dataset of many runs) with JSON (de)serialization and train/test
//!   splitting.
//! * [`series`] — time-series views over a trace (send-rate series, delay
//!   series, inter-arrival differences, …) used as model features.
//! * [`metrics`] — the summary metrics the paper's figures report
//!   (average rate, 95th-percentile delay, loss %, per-window reordering
//!   rate).
//!
//! Timestamps are integer **nanoseconds** (`u64`) to keep traces exact and
//! deterministic; series and metrics convert to `f64` seconds at the edges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod flow;
pub mod metrics;
pub mod record;
pub mod series;
pub mod time;

pub use csv::{from_csv, to_csv, CsvError};
pub use dataset::TraceDataset;
pub use flow::{FlowMeta, FlowTrace};
pub use metrics::TraceMetrics;
pub use record::PacketRecord;
pub use series::TimeSeries;
pub use time::{ns_to_secs, secs_to_ns, MICROS, MILLIS, SECONDS};
