//! Summary metrics reported by the paper's figures.
//!
//! Fig. 2/3 plot each run as (average rate, 95th-percentile delay, loss %);
//! Fig. 5 plots the distribution of per-1 s-window reordering rates. This
//! module computes all of them from a [`FlowTrace`].

use serde::{Deserialize, Serialize};

use crate::flow::FlowTrace;
use crate::time::secs_to_ns;

/// Per-run summary metrics (one scatter point in the paper's Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceMetrics {
    /// Mean delivered throughput over the trace span, megabits per second.
    pub avg_rate_mbps: f64,
    /// 95th-percentile one-way delay over delivered packets, milliseconds.
    pub p95_delay_ms: f64,
    /// Packet loss percentage in `[0, 100]`.
    pub loss_pct: f64,
    /// Mean per-1 s-window reordering rate (fraction of delivered packets
    /// arriving out of order), `[0, 1]`.
    pub mean_reorder_rate: f64,
}

impl TraceMetrics {
    /// Compute all summary metrics for a trace.
    pub fn of(trace: &FlowTrace) -> Self {
        Self {
            avg_rate_mbps: avg_rate_mbps(trace),
            p95_delay_ms: delay_percentile_ms(trace, 0.95).unwrap_or(0.0),
            loss_pct: trace.loss_rate() * 100.0,
            mean_reorder_rate: {
                let rates = reordering_rates(trace, 1.0);
                if rates.is_empty() {
                    0.0
                } else {
                    rates.iter().sum::<f64>() / rates.len() as f64
                }
            },
        }
    }
}

/// Mean delivered throughput over the trace span, Mbps.
pub fn avg_rate_mbps(trace: &FlowTrace) -> f64 {
    let span = trace.span_secs();
    if span <= 0.0 {
        return 0.0;
    }
    trace.bytes_delivered() as f64 * 8.0 / span / 1e6
}

/// Delay percentile over delivered packets, milliseconds.
///
/// `q` in `[0, 1]`; uses the nearest-rank method on the sorted delays.
/// Returns `None` if no packets were delivered.
pub fn delay_percentile_ms(trace: &FlowTrace, q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "percentile out of range");
    let mut delays: Vec<u64> = trace.delivered().filter_map(|r| r.delay_ns()).collect();
    if delays.is_empty() {
        return None;
    }
    delays.sort_unstable();
    let rank = ((q * delays.len() as f64).ceil() as usize).clamp(1, delays.len());
    Some(delays[rank - 1] as f64 / 1e6)
}

/// Per-window reordering rates (Fig. 5): for each window of `window_secs`
/// (aligned to the first arrival, indexed by arrival time), the fraction of
/// delivered packets in that window that arrived **out of order** — i.e.
/// whose sequence number is smaller than the maximum sequence number already
/// seen at the receiver.
///
/// Windows with no arrivals are skipped (they have no defined rate).
pub fn reordering_rates(trace: &FlowTrace, window_secs: f64) -> Vec<f64> {
    assert!(window_secs > 0.0, "window must be positive");
    let arrivals = trace.arrival_order();
    if arrivals.is_empty() {
        return Vec::new();
    }
    let window_ns = secs_to_ns(window_secs).max(1);
    let t0 = arrivals[0].recv_ns.expect("delivered");
    let n_windows = ((arrivals.last().expect("nonempty").recv_ns.expect("delivered") - t0)
        / window_ns
        + 1) as usize;
    let mut total = vec![0usize; n_windows];
    let mut reordered = vec![0usize; n_windows];
    let mut max_seq_seen: Option<u64> = None;
    for r in arrivals {
        let idx = ((r.recv_ns.expect("delivered") - t0) / window_ns) as usize;
        total[idx] += 1;
        if let Some(m) = max_seq_seen {
            if r.seq < m {
                reordered[idx] += 1;
            }
        }
        max_seq_seen = Some(max_seq_seen.map_or(r.seq, |m| m.max(r.seq)));
    }
    total
        .iter()
        .zip(&reordered)
        .filter(|(t, _)| **t > 0)
        .map(|(t, r)| *r as f64 / *t as f64)
        .collect()
}

/// Overall reordering rate: out-of-order arrivals / delivered packets.
pub fn overall_reordering_rate(trace: &FlowTrace) -> f64 {
    let arrivals = trace.arrival_order();
    if arrivals.is_empty() {
        return 0.0;
    }
    let mut max_seq_seen: Option<u64> = None;
    let mut reordered = 0usize;
    for r in &arrivals {
        if let Some(m) = max_seq_seen {
            if r.seq < m {
                reordered += 1;
            }
        }
        max_seq_seen = Some(max_seq_seen.map_or(r.seq, |m| m.max(r.seq)));
    }
    reordered as f64 / arrivals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowMeta;
    use crate::record::PacketRecord;
    use crate::time::{MILLIS, SECONDS};

    fn mk(records: Vec<PacketRecord>) -> FlowTrace {
        FlowTrace::from_records(FlowMeta::default(), records)
    }

    #[test]
    fn avg_rate_uses_span() {
        // 1 MB delivered over a 2 s span -> 4 Mbps.
        let t = mk(vec![
            PacketRecord::delivered(0, 0, 500_000, SECONDS),
            PacketRecord::delivered(1, SECONDS, 500_000, 2 * SECONDS),
        ]);
        assert!((avg_rate_mbps(&t) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_nearest_rank() {
        // Delays 10..=100 ms in 10 ms steps.
        let recs: Vec<_> =
            (0..10u64).map(|i| PacketRecord::delivered(i, 0, 100, (i + 1) * 10 * MILLIS)).collect();
        let t = mk(recs);
        assert_eq!(delay_percentile_ms(&t, 0.95), Some(100.0));
        assert_eq!(delay_percentile_ms(&t, 0.50), Some(50.0));
        assert_eq!(delay_percentile_ms(&t, 0.0), Some(10.0));
        assert_eq!(delay_percentile_ms(&t, 1.0), Some(100.0));
    }

    #[test]
    fn percentile_of_empty_is_none() {
        let t = mk(vec![PacketRecord::lost(0, 0, 100)]);
        assert_eq!(delay_percentile_ms(&t, 0.95), None);
    }

    #[test]
    fn reordering_detected_per_window() {
        // Window 0 (arrivals in [0, 1s)): seqs arrive 0, 2, 1 -> one
        // reordered of three. Window 1: in-order.
        let t = mk(vec![
            PacketRecord::delivered(0, 0, 100, 10 * MILLIS),
            PacketRecord::delivered(1, MILLIS, 100, 30 * MILLIS),
            PacketRecord::delivered(2, 2 * MILLIS, 100, 20 * MILLIS),
            PacketRecord::delivered(3, SECONDS, 100, SECONDS + 10 * MILLIS),
            PacketRecord::delivered(4, SECONDS, 100, SECONDS + 20 * MILLIS),
        ]);
        let rates = reordering_rates(&t, 1.0);
        assert_eq!(rates.len(), 2);
        assert!((rates[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(rates[1], 0.0);
        assert!((overall_reordering_rate(&t) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn in_order_trace_has_zero_reordering() {
        let recs: Vec<_> = (0..100u64)
            .map(|i| PacketRecord::delivered(i, i * MILLIS, 100, (i + 20) * MILLIS))
            .collect();
        let t = mk(recs);
        assert_eq!(overall_reordering_rate(&t), 0.0);
        assert!(reordering_rates(&t, 1.0).iter().all(|r| *r == 0.0));
    }

    #[test]
    fn metrics_bundle() {
        let t = mk(vec![
            PacketRecord::delivered(0, 0, 1000, 50 * MILLIS),
            PacketRecord::lost(1, MILLIS, 1000),
            PacketRecord::delivered(2, 2 * MILLIS, 1000, 60 * MILLIS),
            PacketRecord::delivered(3, 3 * MILLIS, 1000, 70 * MILLIS),
        ]);
        let m = TraceMetrics::of(&t);
        assert!((m.loss_pct - 25.0).abs() < 1e-12);
        assert!((m.p95_delay_ms - 67.0).abs() < 1e-9); // delays 50, 58, 67 ms
        assert!(m.avg_rate_mbps > 0.0);
        assert_eq!(m.mean_reorder_rate, 0.0);
    }
}
