//! Collections of flow traces with persistence and splitting.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::flow::FlowTrace;

/// A collection of flow traces — e.g. one Pantheon-like dataset of many runs
/// of one protocol over randomized path instances.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceDataset {
    /// Dataset label (e.g. `"india-cellular/cubic"`).
    pub name: String,
    /// The member traces.
    pub traces: Vec<FlowTrace>,
}

impl TraceDataset {
    /// An empty dataset with a label.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), traces: Vec::new() }
    }

    /// Build from traces.
    pub fn from_traces(name: impl Into<String>, traces: Vec<FlowTrace>) -> Self {
        Self { name: name.into(), traces }
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Deterministic split into (train, test): the first
    /// `ceil(len * train_frac)` traces train, the rest test.
    ///
    /// The testbed already randomizes path instances per trace, so a
    /// positional split is an unbiased split; keeping it deterministic makes
    /// experiments reproducible without threading an RNG through.
    pub fn split(&self, train_frac: f64) -> (TraceDataset, TraceDataset) {
        assert!((0.0..=1.0).contains(&train_frac), "train fraction out of range");
        let k = (self.traces.len() as f64 * train_frac).ceil() as usize;
        let k = k.min(self.traces.len());
        (
            TraceDataset::from_traces(format!("{}/train", self.name), self.traces[..k].to_vec()),
            TraceDataset::from_traces(format!("{}/test", self.name), self.traces[k..].to_vec()),
        )
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dataset serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Write the dataset to a JSON file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Read a dataset from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowMeta;
    use crate::record::PacketRecord;

    fn mk_dataset(n: usize) -> TraceDataset {
        let traces = (0..n)
            .map(|i| {
                FlowTrace::from_records(
                    FlowMeta::new("p", "cubic", i.to_string()),
                    vec![PacketRecord::delivered(0, 0, 100, 1000 + i as u64)],
                )
            })
            .collect();
        TraceDataset::from_traces("test", traces)
    }

    #[test]
    fn split_fractions() {
        let d = mk_dataset(10);
        let (train, test) = d.split(0.6);
        assert_eq!(train.len(), 6);
        assert_eq!(test.len(), 4);
        let (train, test) = d.split(0.0);
        assert_eq!(train.len(), 0);
        assert_eq!(test.len(), 10);
        let (train, test) = d.split(1.0);
        assert_eq!(train.len(), 10);
        assert_eq!(test.len(), 0);
    }

    #[test]
    fn split_is_positional_and_disjoint() {
        let d = mk_dataset(5);
        let (train, test) = d.split(0.4);
        assert_eq!(train.traces[0].meta.run, "0");
        assert_eq!(test.traces[0].meta.run, "2");
        assert_eq!(train.len() + test.len(), d.len());
    }

    #[test]
    fn json_roundtrip() {
        let d = mk_dataset(3);
        let back = TraceDataset::from_json(&d.to_json()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn file_roundtrip() {
        let d = mk_dataset(2);
        let path = std::env::temp_dir().join("ibox_trace_dataset_test.json");
        d.save(&path).unwrap();
        let back = TraceDataset::load(&path).unwrap();
        assert_eq!(d, back);
        let _ = std::fs::remove_file(&path);
    }
}
