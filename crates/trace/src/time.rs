//! Time unit helpers.
//!
//! All trace timestamps are integer nanoseconds since the start of the run.
//! These constants and conversions keep unit handling explicit at the
//! boundaries where traces meet floating-point analytics.

/// Nanoseconds in one microsecond.
pub const MICROS: u64 = 1_000;
/// Nanoseconds in one millisecond.
pub const MILLIS: u64 = 1_000_000;
/// Nanoseconds in one second.
pub const SECONDS: u64 = 1_000_000_000;

/// Convert integer nanoseconds to floating-point seconds.
#[inline]
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / SECONDS as f64
}

/// Convert floating-point seconds to integer nanoseconds (saturating at 0).
///
/// Negative inputs clamp to zero; this is deliberate, because trace
/// timestamps are offsets from the start of a run and can never be negative.
#[inline]
pub fn secs_to_ns(secs: f64) -> u64 {
    if secs <= 0.0 {
        0
    } else {
        (secs * SECONDS as f64).round() as u64
    }
}

/// Convert integer nanoseconds to floating-point milliseconds.
#[inline]
pub fn ns_to_millis(ns: u64) -> f64 {
    ns as f64 / MILLIS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(SECONDS, 1_000 * MILLIS);
        assert_eq!(MILLIS, 1_000 * MICROS);
    }

    #[test]
    fn roundtrip_secs() {
        for ns in [0u64, 1, 999, MILLIS, SECONDS, 30 * SECONDS + 123_456] {
            let secs = ns_to_secs(ns);
            assert_eq!(secs_to_ns(secs), ns, "roundtrip failed for {ns}");
        }
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(secs_to_ns(-1.5), 0);
        assert_eq!(secs_to_ns(0.0), 0);
    }

    #[test]
    fn millis_conversion() {
        assert_eq!(ns_to_millis(2 * MILLIS + MILLIS / 2), 2.5);
    }
}
