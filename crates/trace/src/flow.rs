//! The input-output trace of a single flow.

use serde::{Deserialize, Serialize};

use crate::record::PacketRecord;
use crate::time::ns_to_secs;

/// Metadata describing where a trace came from.
///
/// iBox treats the network as a black box, so the metadata is purely
/// descriptive (used for dataset bookkeeping and experiment labelling) and
/// never consulted by the models.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowMeta {
    /// Name of the network path (e.g. `"india-cellular"`).
    pub path: String,
    /// Name of the sender / congestion-control protocol (e.g. `"cubic"`).
    pub protocol: String,
    /// Free-form run label (e.g. seed or instance id).
    pub run: String,
}

impl FlowMeta {
    /// Construct metadata from the three labels.
    pub fn new(
        path: impl Into<String>,
        protocol: impl Into<String>,
        run: impl Into<String>,
    ) -> Self {
        Self { path: path.into(), protocol: protocol.into(), run: run.into() }
    }
}

/// The input-output trace of one flow over a network path.
///
/// Records are kept **sorted by send time** (ties broken by sequence
/// number); [`FlowTrace::push`] maintains the invariant and
/// [`FlowTrace::from_records`] establishes it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowTrace {
    /// Descriptive metadata.
    pub meta: FlowMeta,
    records: Vec<PacketRecord>,
}

impl FlowTrace {
    /// An empty trace with the given metadata.
    pub fn new(meta: FlowMeta) -> Self {
        Self { meta, records: Vec::new() }
    }

    /// Build a trace from records, sorting them by send time.
    ///
    /// ```
    /// use ibox_trace::{FlowMeta, FlowTrace, PacketRecord};
    /// let trace = FlowTrace::from_records(
    ///     FlowMeta::new("path", "cubic", "run0"),
    ///     vec![
    ///         PacketRecord::delivered(0, 0, 1400, 40_000_000),
    ///         PacketRecord::lost(1, 1_000_000, 1400),
    ///     ],
    /// );
    /// assert_eq!(trace.delivered_count(), 1);
    /// assert_eq!(trace.loss_rate(), 0.5);
    /// ```
    pub fn from_records(meta: FlowMeta, mut records: Vec<PacketRecord>) -> Self {
        // Simulators emit in send order; a linear scan beats re-sorting.
        if !records.windows(2).all(|w| (w[0].send_ns, w[0].seq) <= (w[1].send_ns, w[1].seq)) {
            records.sort_by_key(|r| (r.send_ns, r.seq));
        }
        Self { meta, records }
    }

    /// Append a record. Records must arrive in nondecreasing send order;
    /// out-of-order pushes are re-sorted (rare path, e.g. merged traces).
    pub fn push(&mut self, rec: PacketRecord) {
        if let Some(last) = self.records.last() {
            if (rec.send_ns, rec.seq) < (last.send_ns, last.seq) {
                self.records.push(rec);
                self.records.sort_by_key(|r| (r.send_ns, r.seq));
                return;
            }
        }
        self.records.push(rec);
    }

    /// All records, sorted by send time.
    #[inline]
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Number of packets sent.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no packets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterator over delivered packets only.
    pub fn delivered(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records.iter().filter(|r| !r.is_lost())
    }

    /// Number of delivered packets.
    pub fn delivered_count(&self) -> usize {
        self.delivered().count()
    }

    /// Number of lost packets.
    pub fn lost_count(&self) -> usize {
        self.records.iter().filter(|r| r.is_lost()).count()
    }

    /// Total bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.size)).sum()
    }

    /// Total bytes delivered.
    pub fn bytes_delivered(&self) -> u64 {
        self.delivered().map(|r| u64::from(r.size)).sum()
    }

    /// Send-side duration (first send to last send), seconds.
    pub fn send_duration_secs(&self) -> f64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => ns_to_secs(b.send_ns - a.send_ns),
            _ => 0.0,
        }
    }

    /// Wall-clock span covered by the trace: first send to the latest of
    /// (last send, last receive), in seconds.
    pub fn span_secs(&self) -> f64 {
        let Some(first) = self.records.first() else { return 0.0 };
        let mut end = self.records.last().map(|r| r.send_ns).unwrap_or(first.send_ns);
        for r in self.delivered() {
            end = end.max(r.recv_ns.expect("delivered"));
        }
        ns_to_secs(end - first.send_ns)
    }

    /// Minimum one-way delay over delivered packets, nanoseconds.
    ///
    /// iBoxNet uses this as the propagation-delay estimate (§3).
    pub fn min_delay_ns(&self) -> Option<u64> {
        self.delivered().filter_map(|r| r.delay_ns()).min()
    }

    /// Maximum one-way delay over delivered packets, nanoseconds.
    pub fn max_delay_ns(&self) -> Option<u64> {
        self.delivered().filter_map(|r| r.delay_ns()).max()
    }

    /// Loss rate in `[0, 1]` (lost / sent). Zero for an empty trace.
    pub fn loss_rate(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.lost_count() as f64 / self.records.len() as f64
        }
    }

    /// Delivered packets sorted by *receive* time — the receiver's view,
    /// used for reordering analysis.
    pub fn arrival_order(&self) -> Vec<&PacketRecord> {
        let mut v: Vec<&PacketRecord> = self.delivered().collect();
        v.sort_by_key(|r| (r.recv_ns.expect("delivered"), r.seq));
        v
    }

    /// Content digest of the trace: FNV-1a 64 over the metadata strings
    /// (length-prefixed) and every record's `(seq, send_ns, size, recv_ns)`
    /// in fixed-width little-endian encoding, formatted as
    /// `fnv1a:{:016x}` to match `ibox_obs::config_hash`.
    ///
    /// Two traces share a digest iff they are identical (up to hash
    /// collisions) — this is the trace component of fit-cache keys, where
    /// a stale hit would silently replay the wrong path model.
    pub fn digest(&self) -> String {
        const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1_0000_0000_01b3;
        let mut h = BASIS;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for s in [&self.meta.path, &self.meta.protocol, &self.meta.run] {
            eat(&(s.len() as u64).to_le_bytes());
            eat(s.as_bytes());
        }
        eat(&(self.records.len() as u64).to_le_bytes());
        for r in &self.records {
            eat(&r.seq.to_le_bytes());
            eat(&r.send_ns.to_le_bytes());
            eat(&r.size.to_le_bytes());
            // Lost packets hash as u64::MAX — unreachable as a real recv
            // timestamp (≈ 584 years of simulated time).
            eat(&r.recv_ns.unwrap_or(u64::MAX).to_le_bytes());
        }
        format!("fnv1a:{h:016x}")
    }

    /// Shift all timestamps so that the first send is at t = 0.
    ///
    /// Models treat traces as starting at zero; the testbed records absolute
    /// simulation time, so datasets normalize on export.
    pub fn normalized(&self) -> FlowTrace {
        let Some(first) = self.records.first() else { return self.clone() };
        let t0 = first.send_ns;
        let records = self
            .records
            .iter()
            .map(|r| PacketRecord {
                seq: r.seq,
                send_ns: r.send_ns - t0,
                size: r.size,
                recv_ns: r.recv_ns.map(|x| x - t0),
            })
            .collect();
        Self { meta: self.meta.clone(), records }
    }

    /// [`FlowTrace::normalized`] without the copy: shifts the timestamps
    /// in place. Free when the trace already starts at zero (every
    /// simulator flow that starts at t = 0 does).
    pub fn into_normalized(mut self) -> FlowTrace {
        let Some(first) = self.records.first() else { return self };
        let t0 = first.send_ns;
        if t0 != 0 {
            for r in &mut self.records {
                r.send_ns -= t0;
                if let Some(recv) = &mut r.recv_ns {
                    *recv -= t0;
                }
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MILLIS, SECONDS};

    fn sample() -> FlowTrace {
        let meta = FlowMeta::new("p", "cubic", "0");
        FlowTrace::from_records(
            meta,
            vec![
                PacketRecord::delivered(0, 0, 1000, 50 * MILLIS),
                PacketRecord::delivered(1, 10 * MILLIS, 1000, 70 * MILLIS),
                PacketRecord::lost(2, 20 * MILLIS, 1000),
                PacketRecord::delivered(3, 30 * MILLIS, 500, 60 * MILLIS),
                PacketRecord::delivered(4, SECONDS, 1000, SECONDS + 40 * MILLIS),
            ],
        )
    }

    #[test]
    fn counting() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.delivered_count(), 4);
        assert_eq!(t.lost_count(), 1);
        assert_eq!(t.bytes_sent(), 4500);
        assert_eq!(t.bytes_delivered(), 3500);
        assert!((t.loss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn delay_extremes() {
        let t = sample();
        // seq 3: sent 30ms, received 60ms -> 30ms min.
        assert_eq!(t.min_delay_ns(), Some(30 * MILLIS));
        // seq 1: sent 10ms, received 70ms -> 60ms max.
        assert_eq!(t.max_delay_ns(), Some(60 * MILLIS));
    }

    #[test]
    fn durations() {
        let t = sample();
        assert!((t.send_duration_secs() - 1.0).abs() < 1e-12);
        assert!((t.span_secs() - 1.040).abs() < 1e-9);
    }

    #[test]
    fn arrival_order_reflects_reordering() {
        let t = sample();
        let order: Vec<u64> = t.arrival_order().iter().map(|r| r.seq).collect();
        // seq 3 arrives (60ms) before seq 1 finished? No: 1 arrives at 70ms,
        // 3 at 60ms, so arrival order is 0, 3, 1, 4.
        assert_eq!(order, vec![0, 3, 1, 4]);
    }

    #[test]
    fn push_keeps_sorted() {
        let mut t = FlowTrace::new(FlowMeta::default());
        t.push(PacketRecord::delivered(1, 100, 1, 200));
        t.push(PacketRecord::delivered(0, 50, 1, 300)); // out of order
        let seqs: Vec<u64> = t.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn normalization_zeroes_first_send() {
        let t = sample();
        let mut shifted = t.clone();
        shifted = FlowTrace::from_records(
            shifted.meta.clone(),
            shifted
                .records()
                .iter()
                .map(|r| PacketRecord {
                    seq: r.seq,
                    send_ns: r.send_ns + 5 * SECONDS,
                    size: r.size,
                    recv_ns: r.recv_ns.map(|x| x + 5 * SECONDS),
                })
                .collect(),
        );
        assert_eq!(shifted.normalized(), t);
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let t = sample();
        assert_eq!(t.digest(), t.clone().digest(), "digest must be deterministic");
        assert!(t.digest().starts_with("fnv1a:"), "obs hash convention");

        // Any record mutation changes the digest…
        let mut recs: Vec<PacketRecord> = t.records().to_vec();
        recs[1].size += 1;
        let bumped = FlowTrace::from_records(t.meta.clone(), recs);
        assert_ne!(bumped.digest(), t.digest());

        // …and so does a delivered→lost flip or a metadata change.
        let mut recs: Vec<PacketRecord> = t.records().to_vec();
        recs[0].recv_ns = None;
        let lost = FlowTrace::from_records(t.meta.clone(), recs);
        assert_ne!(lost.digest(), t.digest());

        let mut renamed = t.clone();
        renamed.meta.run = "other".into();
        assert_ne!(renamed.digest(), t.digest());
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: FlowTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
