//! Time-series views over flow traces.
//!
//! The iBox models consume traces as continuous-valued time series: the
//! sending-rate series (model input), the delay series (model output), the
//! estimated cross-traffic series, and the inter-arrival-difference series
//! (behaviour discovery, §5.1). This module provides a small, allocation-
//! friendly [`TimeSeries`] type and the standard constructions over a
//! [`FlowTrace`].

use serde::{Deserialize, Serialize};

use crate::flow::FlowTrace;
use crate::time::ns_to_secs;

/// A sampled time series: strictly increasing timestamps (seconds) with one
/// value per timestamp.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Sample timestamps, seconds, strictly increasing.
    pub t: Vec<f64>,
    /// Sample values.
    pub v: Vec<f64>,
}

impl TimeSeries {
    /// Construct from parallel vectors. Panics if lengths differ or
    /// timestamps are not strictly increasing (programming error).
    pub fn new(t: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(t.len(), v.len(), "timestamp/value length mismatch");
        debug_assert!(t.windows(2).all(|w| w[0] < w[1]), "timestamps must be strictly increasing");
        Self { t, v }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether the series is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Value at time `at` by zero-order hold (last sample at or before
    /// `at`); `None` before the first sample or if empty.
    pub fn sample_hold(&self, at: f64) -> Option<f64> {
        if self.t.is_empty() || at < self.t[0] {
            return None;
        }
        let idx = match self.t.binary_search_by(|x| x.partial_cmp(&at).expect("NaN timestamp")) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Some(self.v[idx])
    }

    /// Resample onto a uniform grid `[start, end)` with step `dt`, using
    /// zero-order hold and `fill` before the first sample.
    pub fn resample(&self, start: f64, end: f64, dt: f64, fill: f64) -> TimeSeries {
        assert!(dt > 0.0, "resample step must be positive");
        let n = ((end - start) / dt).ceil().max(0.0) as usize;
        let mut t = Vec::with_capacity(n);
        let mut v = Vec::with_capacity(n);
        for i in 0..n {
            let at = start + i as f64 * dt;
            t.push(at);
            v.push(self.sample_hold(at).unwrap_or(fill));
        }
        TimeSeries { t, v }
    }

    /// Mean of the values (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.v.is_empty() {
            0.0
        } else {
            self.v.iter().sum::<f64>() / self.v.len() as f64
        }
    }
}

/// The per-packet delay series of a trace: one sample per **delivered**
/// packet, timestamped at its send time, value = one-way delay in seconds.
pub fn delay_series(trace: &FlowTrace) -> TimeSeries {
    let mut t = Vec::new();
    let mut v = Vec::new();
    let mut last_t = f64::NEG_INFINITY;
    for r in trace.delivered() {
        let mut ts = ns_to_secs(r.send_ns);
        // Strictly increasing timestamps: nudge exact ties by 1 ns.
        if ts <= last_t {
            ts = last_t + 1e-9;
        }
        last_t = ts;
        t.push(ts);
        v.push(r.delay_secs().expect("delivered"));
    }
    TimeSeries { t, v }
}

/// The sending-rate series: bytes sent per fixed window of `window_secs`,
/// expressed in bits per second, timestamped at the window start.
///
/// Windows are aligned to the first send. Empty windows report zero.
pub fn send_rate_series(trace: &FlowTrace, window_secs: f64) -> TimeSeries {
    rate_series(trace.records().iter().map(|r| (r.send_ns, u64::from(r.size))), window_secs)
}

/// The receiving-rate series: bytes *received* per fixed window, bits per
/// second, windows aligned to the first arrival.
pub fn recv_rate_series(trace: &FlowTrace, window_secs: f64) -> TimeSeries {
    let mut arrivals: Vec<(u64, u64)> =
        trace.delivered().map(|r| (r.recv_ns.expect("delivered"), u64::from(r.size))).collect();
    arrivals.sort_unstable();
    rate_series(arrivals.into_iter(), window_secs)
}

fn rate_series(events: impl Iterator<Item = (u64, u64)>, window_secs: f64) -> TimeSeries {
    assert!(window_secs > 0.0, "rate window must be positive");
    let events: Vec<(u64, u64)> = events.collect();
    let Some(&(t0, _)) = events.first() else { return TimeSeries::default() };
    let t_end = events.last().expect("nonempty").0;
    let window_ns = crate::time::secs_to_ns(window_secs).max(1);
    let n_windows = ((t_end - t0) / window_ns + 1) as usize;
    let mut bytes = vec![0u64; n_windows];
    for (ts, sz) in events {
        let idx = ((ts - t0) / window_ns) as usize;
        bytes[idx] += sz;
    }
    let mut t = Vec::with_capacity(n_windows);
    let mut v = Vec::with_capacity(n_windows);
    for (i, b) in bytes.into_iter().enumerate() {
        t.push(ns_to_secs(t0 + i as u64 * window_ns));
        v.push(b as f64 * 8.0 / window_secs);
    }
    TimeSeries { t, v }
}

/// Peak receiving rate over a **sliding** window of `window_secs`, in bits
/// per second. This is iBoxNet's bottleneck-bandwidth estimator (§3): "the
/// peak receiving rate, over 1 s sliding windows, seen in the training
/// data".
///
/// Uses an exact two-pointer sweep over arrival events, evaluating the
/// window ending at each arrival.
pub fn peak_recv_rate_bps(trace: &FlowTrace, window_secs: f64) -> f64 {
    assert!(window_secs > 0.0, "window must be positive");
    let mut arrivals: Vec<(u64, u64)> =
        trace.delivered().map(|r| (r.recv_ns.expect("delivered"), u64::from(r.size))).collect();
    if arrivals.is_empty() {
        return 0.0;
    }
    arrivals.sort_unstable();
    let window_ns = crate::time::secs_to_ns(window_secs).max(1);
    let mut best_bytes = 0u64;
    let mut sum = 0u64;
    let mut lo = 0usize;
    for hi in 0..arrivals.len() {
        sum += arrivals[hi].1;
        while arrivals[hi].0 - arrivals[lo].0 >= window_ns {
            sum -= arrivals[lo].1;
            lo += 1;
        }
        best_bytes = best_bytes.max(sum);
    }
    best_bytes as f64 * 8.0 / window_secs
}

/// Inter-arrival differences in **send order**: for consecutive delivered
/// packets (by send order) `i-1, i`, the value `recv_i − recv_{i-1}` in
/// seconds, timestamped at `send_i`.
///
/// Negative values indicate reordering — the symbol `'a'` in the paper's
/// SAX behaviour-discovery experiment (Fig. 8).
pub fn inter_arrival_diffs(trace: &FlowTrace) -> TimeSeries {
    let delivered: Vec<_> = trace.delivered().collect();
    let mut t = Vec::new();
    let mut v = Vec::new();
    let mut last_t = f64::NEG_INFINITY;
    for w in delivered.windows(2) {
        let (a, b) = (w[0], w[1]);
        let diff = b.recv_ns.expect("delivered") as f64 - a.recv_ns.expect("delivered") as f64;
        let mut ts = ns_to_secs(b.send_ns);
        if ts <= last_t {
            ts = last_t + 1e-9;
        }
        last_t = ts;
        t.push(ts);
        v.push(diff / 1e9);
    }
    TimeSeries { t, v }
}

/// Instantaneous sending rate feature per packet: bytes sent during the
/// second (`window_secs`) preceding each packet's send time, in bits per
/// second. This is the iBoxML input feature of §4.1.
pub fn trailing_send_rate(trace: &FlowTrace, window_secs: f64) -> Vec<f64> {
    assert!(window_secs > 0.0, "window must be positive");
    let window_ns = crate::time::secs_to_ns(window_secs).max(1);
    let recs = trace.records();
    let mut out = Vec::with_capacity(recs.len());
    let mut lo = 0usize;
    let mut sum = 0u64;
    for hi in 0..recs.len() {
        // Window is (send_hi - window, send_hi]: include current packet.
        sum += u64::from(recs[hi].size);
        while recs[hi].send_ns - recs[lo].send_ns >= window_ns {
            sum -= u64::from(recs[lo].size);
            lo += 1;
        }
        out.push(sum as f64 * 8.0 / window_secs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowMeta;
    use crate::record::PacketRecord;
    use crate::time::{MILLIS, SECONDS};

    fn mk(records: Vec<PacketRecord>) -> FlowTrace {
        FlowTrace::from_records(FlowMeta::default(), records)
    }

    #[test]
    fn delay_series_skips_losses() {
        let t = mk(vec![
            PacketRecord::delivered(0, 0, 100, 10 * MILLIS),
            PacketRecord::lost(1, MILLIS, 100),
            PacketRecord::delivered(2, 2 * MILLIS, 100, 20 * MILLIS),
        ]);
        let s = delay_series(&t);
        assert_eq!(s.len(), 2);
        assert!((s.v[0] - 0.010).abs() < 1e-12);
        assert!((s.v[1] - 0.018).abs() < 1e-12);
    }

    #[test]
    fn send_rate_series_counts_windows() {
        // 4 packets of 1250 bytes in the first second, 1 in the third.
        let t = mk(vec![
            PacketRecord::delivered(0, 0, 1250, MILLIS),
            PacketRecord::delivered(1, 100 * MILLIS, 1250, 101 * MILLIS),
            PacketRecord::delivered(2, 200 * MILLIS, 1250, 201 * MILLIS),
            PacketRecord::delivered(3, 300 * MILLIS, 1250, 301 * MILLIS),
            PacketRecord::delivered(4, 2 * SECONDS, 1250, 2 * SECONDS + MILLIS),
        ]);
        let s = send_rate_series(&t, 1.0);
        assert_eq!(s.len(), 3);
        assert!((s.v[0] - 40_000.0).abs() < 1e-9); // 5000 B * 8 / 1 s
        assert_eq!(s.v[1], 0.0);
        assert!((s.v[2] - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn peak_recv_rate_finds_burst() {
        // Burst: 10 packets of 12500 bytes within 0.1 s -> 1 Mbps over 1 s
        // sliding window.
        let mut recs = Vec::new();
        for i in 0..10u64 {
            recs.push(PacketRecord::delivered(i, 0, 12_500, i * 10 * MILLIS));
        }
        // A straggler much later so the average rate is low.
        recs.push(PacketRecord::delivered(10, 0, 12_500, 10 * SECONDS));
        let t = mk(recs);
        let peak = peak_recv_rate_bps(&t, 1.0);
        assert!((peak - 1_000_000.0).abs() < 1e-6, "peak = {peak}");
    }

    #[test]
    fn inter_arrival_diffs_show_reordering() {
        let t = mk(vec![
            PacketRecord::delivered(0, 0, 100, 10 * MILLIS),
            PacketRecord::delivered(1, MILLIS, 100, 30 * MILLIS),
            // Arrives *before* seq 1 did: negative diff.
            PacketRecord::delivered(2, 2 * MILLIS, 100, 25 * MILLIS),
        ]);
        let s = inter_arrival_diffs(&t);
        assert_eq!(s.len(), 2);
        assert!(s.v[0] > 0.0);
        assert!((s.v[1] + 0.005).abs() < 1e-12);
    }

    #[test]
    fn trailing_send_rate_window() {
        let t = mk(vec![
            PacketRecord::delivered(0, 0, 1250, MILLIS),
            PacketRecord::delivered(1, 500 * MILLIS, 1250, 501 * MILLIS),
            PacketRecord::delivered(2, 1400 * MILLIS, 1250, 1401 * MILLIS),
        ]);
        let r = trailing_send_rate(&t, 1.0);
        assert_eq!(r.len(), 3);
        assert!((r[0] - 10_000.0).abs() < 1e-9); // just itself
        assert!((r[1] - 20_000.0).abs() < 1e-9); // packets 0 and 1
        assert!((r[2] - 20_000.0).abs() < 1e-9); // packets 1 and 2 (0 aged out)
    }

    #[test]
    fn sample_hold_and_resample() {
        let s = TimeSeries::new(vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]);
        assert_eq!(s.sample_hold(0.5), None);
        assert_eq!(s.sample_hold(1.0), Some(10.0));
        assert_eq!(s.sample_hold(2.7), Some(20.0));
        assert_eq!(s.sample_hold(9.0), Some(30.0));
        let r = s.resample(0.0, 4.0, 1.0, -1.0);
        assert_eq!(r.v, vec![-1.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn empty_trace_series_are_empty() {
        let t = mk(vec![]);
        assert!(delay_series(&t).is_empty());
        assert!(send_rate_series(&t, 1.0).is_empty());
        assert_eq!(peak_recv_rate_bps(&t, 1.0), 0.0);
        assert!(inter_arrival_diffs(&t).is_empty());
        assert!(trailing_send_rate(&t, 1.0).is_empty());
    }
}
