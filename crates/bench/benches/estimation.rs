//! Cost of fitting iBox models.
//!
//! §3.2: "The simplicity of iBoxNet and the use of network domain
//! knowledge to directly estimate the parameters makes both learning the
//! model and running it very efficient." These benches put numbers on
//! "learning the model": static-parameter estimation, cross-traffic
//! estimation, a full iBoxNet fit, and one epoch of iBoxML training on the
//! same trace — the efficiency gap the paper contrasts in §4.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ibox::estimator::{CrossTrafficEstimate, StaticParams, DEFAULT_BIN_SECS};
use ibox::iboxml::{IBoxMl, IBoxMlConfig};
use ibox::IBoxNet;
use ibox_cc::Cubic;
use ibox_ml::TrainConfig;
use ibox_sim::{CrossTrafficCfg, PathConfig, PathEmulator, SimTime};
use ibox_trace::FlowTrace;

fn training_trace() -> FlowTrace {
    let emu = PathEmulator::from_spec(
        ibox_sim::PathSpec::single(PathConfig::simple(8e6, SimTime::from_millis(25), 100_000)),
        SimTime::from_secs(20),
    )
    .with_cross_traffic(CrossTrafficCfg::cbr(
        2e6,
        SimTime::from_secs(5),
        SimTime::from_secs(15),
    ));
    let out = emu.run_sender(Box::new(Cubic::new()), "m", 3);
    out.traces.into_iter().next().expect("one flow").normalized()
}

fn bench_estimation(c: &mut Criterion) {
    let trace = training_trace();
    let mut group = c.benchmark_group("model_fitting");
    group.sample_size(20);

    group.bench_function("static_params", |b| {
        b.iter(|| black_box(StaticParams::estimate(black_box(&trace))))
    });

    let params = StaticParams::estimate(&trace);
    group.bench_function("cross_traffic_estimate", |b| {
        b.iter(|| {
            black_box(CrossTrafficEstimate::estimate(black_box(&trace), &params, DEFAULT_BIN_SECS))
        })
    });

    group.bench_function("iboxnet_full_fit", |b| {
        b.iter(|| black_box(IBoxNet::fit(black_box(&trace))))
    });

    group.sample_size(10);
    group.bench_function("iboxml_one_epoch_16h", |b| {
        let traces = [trace.clone()];
        b.iter(|| {
            black_box(IBoxMl::fit(
                &traces,
                IBoxMlConfig {
                    hidden_sizes: vec![16],
                    with_cross_traffic: false,
                    known_params: None,
                    train: TrainConfig {
                        epochs: 1,
                        lr: 3e-3,
                        tbptt: 64,
                        clip: 5.0,
                        loss_weight: 0.2,
                        delay_weight: 1.0,
                        ..Default::default()
                    },
                    seed: 1,
                },
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
