//! §4.2 "Simulation Speed" — per-packet inference latency.
//!
//! The paper measures 2.2 ms/packet for a 4-layer, ≈2M-parameter LSTM on a
//! V100 GPU, implying only ~5.5 Mbps of emulated bandwidth at 1500-byte
//! packets. This bench reproduces the comparison on CPU: the full-size
//! iBoxML stack, a small iBoxML stack, a whole iBoxNet emulation second
//! (amortizing its per-packet cost), and the linear reordering model — the
//! ordering (deep model ≫ everything else) is the paper's point.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ibox_ml::{Logistic, LogisticConfig, SequenceModel, SequenceModelConfig};

fn paper_scale_model() -> SequenceModel {
    // 4 layers × 256 hidden ≈ 2.1M parameters (the paper's scale).
    SequenceModel::new(SequenceModelConfig {
        input_size: 6,
        hidden_sizes: vec![256, 256, 256, 256],
        predict_loss: true,
        seed: 1,
    })
}

fn small_model() -> SequenceModel {
    SequenceModel::new(SequenceModelConfig {
        input_size: 6,
        hidden_sizes: vec![32, 32],
        predict_loss: true,
        seed: 1,
    })
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_packet_inference");

    let big = paper_scale_model();
    assert!(big.param_count() > 1_800_000, "paper-scale model must be ~2M params");
    let mut big_state = big.zero_state();
    let x = [0.1f32, -0.2, 0.3, 0.0, 0.5, -0.1];
    group.bench_function("iboxml_4x256_2M_params", |b| {
        b.iter(|| black_box(big.step_inference(black_box(&x), &mut big_state)))
    });

    let small = small_model();
    let mut small_state = small.zero_state();
    group.bench_function("iboxml_2x32", |b| {
        b.iter(|| black_box(small.step_inference(black_box(&x), &mut small_state)))
    });

    // The linear reordering model (§5.1's "lightweight and much faster").
    let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 0.5, 1.0]).collect();
    let labels: Vec<f64> = (0..100).map(|i| f64::from(i % 7 == 0)).collect();
    let logistic =
        Logistic::train(&rows, &labels, &LogisticConfig { epochs: 10, ..Default::default() });
    let feat = [1.0f64, 0.5, 2.0];
    group.bench_function("linear_logistic", |b| {
        b.iter(|| black_box(logistic.predict_proba(black_box(&feat))))
    });

    group.finish();
}

fn bench_iboxnet_step(c: &mut Criterion) {
    // iBoxNet's cost per packet: a whole 1-second emulation of a saturated
    // 8 Mbps path (≈700 packets), amortized by Criterion.
    use ibox_sim::{FixedWindow, PathConfig, PathEmulator, SimTime};
    let mut group = c.benchmark_group("iboxnet_emulation");
    group.sample_size(20);
    group.bench_function("one_second_8mbps_path", |b| {
        b.iter(|| {
            let emu = PathEmulator::from_spec(
                ibox_sim::PathSpec::single(PathConfig::simple(
                    8e6,
                    SimTime::from_millis(20),
                    100_000,
                )),
                SimTime::from_secs(1),
            );
            black_box(emu.run_sender(Box::new(FixedWindow::new(64.0)), "p", 1))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_iboxnet_step);
criterion_main!(benches);
