//! Simulator throughput: how fast the substrate itself runs.
//!
//! iBox's pitch includes "the efficiency of execution for simulation" of
//! the network-model approach; these benches quantify the discrete-event
//! engine's packet throughput across the configurations the experiments
//! use (constant FIFO path, Markov cellular path, proportional-fair
//! scheduling, cross traffic).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ibox_cc::Cubic;
use ibox_sim::{
    CrossTrafficCfg, FixedWindow, PathConfig, PathEmulator, RateModelCfg, SchedulerKind, SimTime,
};

fn base_path() -> PathConfig {
    PathConfig::simple(10e6, SimTime::from_millis(20), 120_000)
}

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput_10s");
    group.sample_size(10);

    group.bench_function("fifo_constant_cubic", |b| {
        b.iter(|| {
            let emu = PathEmulator::from_spec(
                ibox_sim::PathSpec::single(base_path()),
                SimTime::from_secs(10),
            );
            black_box(emu.run_sender(Box::new(Cubic::new()), "m", 1))
        })
    });

    group.bench_function("markov_cellular_cubic", |b| {
        b.iter(|| {
            let mut path = base_path();
            path.rate = RateModelCfg::Markov {
                states: vec![4e6, 8e6, 12e6],
                mean_dwell: SimTime::from_millis(500),
            };
            let emu =
                PathEmulator::from_spec(ibox_sim::PathSpec::single(path), SimTime::from_secs(10));
            black_box(emu.run_sender(Box::new(Cubic::new()), "m", 1))
        })
    });

    group.bench_function("pf_scheduler_with_cross", |b| {
        b.iter(|| {
            let mut path = base_path();
            path.scheduler = SchedulerKind::ProportionalFair { fading: 0.3 };
            let emu =
                PathEmulator::from_spec(ibox_sim::PathSpec::single(path), SimTime::from_secs(10))
                    .with_cross_traffic(CrossTrafficCfg::cbr(
                        3e6,
                        SimTime::ZERO,
                        SimTime::from_secs(10),
                    ));
            black_box(emu.run_sender(Box::new(Cubic::new()), "m", 1))
        })
    });

    group.bench_function("fixed_window_saturation", |b| {
        b.iter(|| {
            let emu = PathEmulator::from_spec(
                ibox_sim::PathSpec::single(base_path()),
                SimTime::from_secs(10),
            );
            black_box(emu.run_sender(Box::new(FixedWindow::new(128.0)), "m", 1))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
