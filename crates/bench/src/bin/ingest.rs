//! Streaming-ingest guardrails: the online estimators must make the
//! per-chunk refit *cheaper* than batch re-estimation, or the whole
//! subsystem is pointless.
//!
//! Three measurements per chunk count (1, 8, 64 chunks of one training
//! trace):
//!
//! 1. **Append throughput** — records/s through a real
//!    [`ibox_ingest::SessionStore`] (chunk files + manifest writes
//!    included), i.e. what `POST /traces/{id}/append` costs below HTTP.
//! 2. **Online refit** — fold each chunk into the incremental
//!    estimators and read the watermark `(b, d, B, C)` after every
//!    chunk: the O(chunk) path a live session runs at its cadence.
//! 3. **Batch refit** — after every chunk, re-run the offline
//!    estimators (`StaticParams::estimate` +
//!    `CrossTrafficEstimate::estimate`) over the whole accepted prefix:
//!    what refitting would cost *without* the online fold.
//!
//! Asserted in-binary (a failed run exits nonzero): at 64 chunks the
//! online fold's throughput is at least the batch-refit throughput —
//! the O(chunk)-vs-O(total) win the ingest subsystem promises.
//!
//! Results land as `ingest.*` gauges in `BENCH_ingest.json`. With
//! `--baseline <path>` the committed manifest is read before being
//! overwritten and the 64-chunk online speedup must not fall below
//! half of it (see [`check_baseline`] for why the tolerance is wider
//! than the other benches').
//!
//! Run: `cargo run -p ibox-bench --release --bin ingest [--quick]
//! [--baseline BENCH_ingest.json]`

use std::hint::black_box;

use criterion::Criterion;
use ibox::estimator::{CrossTrafficEstimate, StaticParams, DEFAULT_BIN_SECS};
use ibox_bench::{cell, render_table, Scale};
use ibox_ingest::{IngestConfig, OnlineCrossTraffic, OnlineStaticParams, SessionStore, Watermark};
use ibox_sim::SimTime;
use ibox_testbed::pantheon::run_protocol;
use ibox_testbed::Profile;
use ibox_trace::{FlowTrace, PacketRecord};

const PROTOCOL: &str = "cubic";
const TRAIN_SEED: u64 = 11;

/// Split the trace into `n` near-equal contiguous chunks.
fn chunked(records: &[PacketRecord], n: usize) -> Vec<(u64, Vec<PacketRecord>)> {
    let per = records.len().div_ceil(n.clamp(1, records.len()));
    (0..records.len())
        .step_by(per)
        .map(|start| {
            let end = (start + per).min(records.len());
            (start as u64, records[start..end].to_vec())
        })
        .collect()
}

/// One full session through the store: open fresh, append every chunk.
fn store_pass(dir: &std::path::Path, trace: &FlowTrace, chunks: &[(u64, Vec<PacketRecord>)]) {
    let _ = std::fs::remove_dir_all(dir);
    let store = SessionStore::open(dir, IngestConfig::default()).expect("open store");
    for (offset, records) in chunks {
        store
            .append("bench", None, Some(trace.meta.clone()), *offset, records.clone())
            .expect("append");
    }
}

/// The online cadence: fold each chunk, then read the watermark — what
/// a live session computes per `refit_every_chunks` boundary.
fn online_pass(chunks: &[(u64, Vec<PacketRecord>)]) -> Watermark {
    let mut statics = OnlineStaticParams::new();
    let mut cross: Option<OnlineCrossTraffic> = None;
    let mut last = None;
    for (i, (_, records)) in chunks.iter().enumerate() {
        statics.fold_chunk(records);
        if cross.is_none() {
            if let Some(params) = statics.params() {
                // First delivery seen: anchor the cross estimator and
                // replay the prefix through it (one-time O(session),
                // exactly what the session store does).
                let mut c = OnlineCrossTraffic::new(&params, DEFAULT_BIN_SECS);
                for (_, prior) in &chunks[..=i] {
                    c.fold_chunk(prior);
                }
                cross = Some(c);
            }
        } else if let Some(c) = cross.as_mut() {
            c.fold_chunk(records);
        }
        last = Watermark::of(&statics, cross.as_ref());
    }
    last.expect("watermark after full trace")
}

/// The naive cadence: after each chunk, batch-estimate over the whole
/// accepted prefix — O(total) per chunk instead of O(chunk).
fn batch_pass(trace: &FlowTrace, chunks: &[(u64, Vec<PacketRecord>)]) -> StaticParams {
    let mut prefix: Vec<PacketRecord> = Vec::new();
    let mut params = None;
    for (_, records) in chunks {
        prefix.extend(records.iter().cloned());
        let t = FlowTrace::from_records(trace.meta.clone(), prefix.clone());
        let p = StaticParams::estimate(&t);
        black_box(CrossTrafficEstimate::estimate(&t, &p, DEFAULT_BIN_SECS));
        params = Some(p);
    }
    params.expect("params after full trace")
}

/// Read `--baseline <path>` from the args, if present.
fn baseline_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--baseline" {
            return args.next();
        }
    }
    None
}

/// Compare the fresh 64-chunk online speedup against a committed
/// manifest. Returns the regressions found (empty = pass): the speedup
/// must not fall below half the baseline. The tolerance is wider than
/// the other benches' 80% because the committed manifest is a full run
/// while the CI gate runs `--quick`: the quick trace has ~4x fewer
/// records per chunk, so the fixed per-chunk watermark cost weighs
/// more and the measured speedup sits structurally below the full-run
/// number (~0.65x of it) before any real regression. Append throughput
/// and absolute refit times are deliberately not gated — they track
/// machine speed, not the algorithmic win.
fn check_baseline(path: &str, fresh: &[(&str, f64)]) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read baseline {path}: {e}")],
    };
    let json: serde_json::JsonValue = match serde_json::parse_value(&text) {
        Ok(v) => v,
        Err(e) => return vec![format!("cannot parse baseline {path}: {e}")],
    };
    let gauges = json.get("metrics").and_then(|m| m.get("gauges"));
    let mut failures = Vec::new();
    for (name, new) in fresh {
        let Some(old) = gauges.and_then(|g| g.get(name)).and_then(|v| v.as_f64()) else {
            continue; // gauge not in the committed manifest yet
        };
        if *new < old * 0.50 {
            failures.push(format!("{name}: {new:.1} vs baseline {old:.1} (>50% regression)"));
        }
    }
    failures
}

fn main() {
    let bench = ibox_bench::BenchRun::start("ingest");
    let mut criterion = Criterion::default();
    let scale = Scale::from_args();

    let duration = SimTime::from_secs(scale.pick(5, 20) as u64);
    let inst = Profile::Ethernet.sample(TRAIN_SEED, duration);
    let train = run_protocol(&inst, PROTOCOL, duration, TRAIN_SEED);
    let n_records = train.records().len() as f64;
    let dir = std::env::temp_dir().join(format!("ibox-bench-ingest-{}", std::process::id()));

    let registry = ibox_obs::global();
    let mut rows = Vec::new();
    let mut online_rps_64 = 0.0;
    let mut batch_rps_64 = 0.0;

    let mut group = criterion.benchmark_group("ingest");
    group.sample_size(scale.pick(3, 5));
    for n_chunks in [1usize, 8, 64] {
        let chunks = chunked(train.records(), n_chunks);

        let append = group
            .bench_function_timed(format!("append_{n_chunks}"), |b| {
                b.iter(|| store_pass(&dir, &train, black_box(&chunks)))
            })
            .expect("measured");
        let append_rps = n_records / (append.min_ns / 1e9).max(1e-12);

        let online = group
            .bench_function_timed(format!("online_refit_{n_chunks}"), |b| {
                b.iter(|| black_box(online_pass(black_box(&chunks))))
            })
            .expect("measured");
        let online_s = online.min_ns / 1e9;
        let online_rps = n_records / online_s.max(1e-12);

        let batch = group
            .bench_function_timed(format!("batch_refit_{n_chunks}"), |b| {
                b.iter(|| black_box(batch_pass(&train, black_box(&chunks))))
            })
            .expect("measured");
        let batch_s = batch.min_ns / 1e9;
        let batch_rps = n_records / batch_s.max(1e-12);

        if n_chunks == 64 {
            online_rps_64 = online_rps;
            batch_rps_64 = batch_rps;
        }

        registry.gauge(&format!("ingest.append_rps_{n_chunks}")).set(append_rps);
        registry
            .gauge(&format!("ingest.online_refit_ms_{n_chunks}"))
            .set(online_s * 1e3 / n_chunks as f64);
        registry
            .gauge(&format!("ingest.batch_refit_ms_{n_chunks}"))
            .set(batch_s * 1e3 / n_chunks as f64);
        registry
            .gauge(&format!("ingest.online_vs_batch_{n_chunks}_x"))
            .set(batch_s / online_s.max(1e-12));

        rows.push(vec![
            n_chunks.to_string(),
            cell(append_rps, 0),
            cell(online_s * 1e3 / n_chunks as f64, 3),
            cell(batch_s * 1e3 / n_chunks as f64, 3),
            format!("{:.1}x", batch_s / online_s.max(1e-12)),
        ]);
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);

    // Read the committed baseline BEFORE finish() overwrites the file.
    let fresh = [("ingest.online_vs_batch_64_x", online_rps_64 / batch_rps_64.max(1e-12))];
    let baseline_failures =
        baseline_from_args().map(|p| check_baseline(&p, &fresh)).unwrap_or_default();

    print!(
        "{}",
        render_table(
            "Streaming ingest: append throughput and refit cost per cadence",
            &[
                "chunks",
                "append rec/s",
                "online refit ms/chunk",
                "batch refit ms/chunk",
                "online speedup"
            ],
            &rows,
        )
    );

    bench.finish();

    // The tentpole promise: at a 64-chunk cadence the online fold beats
    // re-running the batch estimators from scratch every chunk.
    assert!(
        online_rps_64 >= batch_rps_64,
        "online fold must be at least batch-refit throughput at 64 chunks \
         (online {online_rps_64:.0} rec/s vs batch {batch_rps_64:.0} rec/s)"
    );

    if !baseline_failures.is_empty() {
        for f in &baseline_failures {
            eprintln!("ingest regression: {f}");
        }
        std::process::exit(1);
    }
}
