//! Fig. 4 — Instance tests with iBoxNet.
//!
//! Three cross-traffic timings on a known path; an iBoxNet model fitted
//! per instance from a single Cubic run; 10 ground-truth and 10 simulated
//! Vegas runs per instance. The paper reports: (a) the model's Cubic rate
//! time series aligning with ground truth, and (b) k-means (k = 3) over
//! cross-correlation features clustering all runs with their instances
//! "with no mistakes", visualized with t-SNE.
//!
//! This binary prints the clustering purity, the confusion table, the
//! per-pattern Cubic rate alignment, and the t-SNE coordinates.

use ibox::abtest::instance_test_jobs;
use ibox_bench::{cell, render_table, Scale};

fn main() {
    let bench = ibox_bench::BenchRun::start("fig4");
    let scale = Scale::from_args();
    let jobs = ibox_bench::jobs_from_args();
    let runs = scale.pick(3, 10);
    ibox_obs::info!("fig4: running instance test with {runs} runs per pattern…");
    let report = instance_test_jobs(runs, "vegas", 42, jobs);

    println!(
        "## Fig. 4 — instance test (treatment: Vegas, {runs} GT + {runs} sim runs per pattern)"
    );
    println!(
        "k-means (k=3) clustering purity: {:.3} (1.000 = the paper's \"no mistakes\")",
        report.purity
    );
    println!();

    // Confusion: cluster x true pattern.
    let mut table = [[0usize; 3]; 3];
    for (tag, &a) in report.tags.iter().zip(&report.assignments) {
        table[a][tag.pattern] += 1;
    }
    let rows: Vec<Vec<String>> = table
        .iter()
        .enumerate()
        .map(|(c, row)| {
            let mut cells = vec![format!("cluster{c}")];
            cells.extend(row.iter().map(|n| n.to_string()));
            cells
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 4b — cluster vs cross-traffic pattern",
            &["", "pat0 (0-10s)", "pat1 (20-30s)", "pat2 (40-50s)"],
            &rows,
        )
    );

    let align_rows: Vec<Vec<String>> = report
        .control_rate_alignment
        .iter()
        .enumerate()
        .map(|(p, c)| vec![format!("pattern{p}"), cell(*c, 3)])
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 4a — Cubic rate-series correlation: iBoxNet vs ground truth",
            &["instance", "xcorr"],
            &align_rows,
        )
    );

    let emb_rows: Vec<Vec<String>> = report
        .tags
        .iter()
        .zip(&report.embedding)
        .zip(&report.assignments)
        .map(|((tag, xy), a)| {
            vec![
                format!("pat{}", tag.pattern),
                if tag.simulated { "iboxnet" } else { "gt" }.to_string(),
                format!("c{a}"),
                cell(xy[0], 2),
                cell(xy[1], 2),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 4b — t-SNE embedding (plot x,y colored by pattern; × = iboxnet, ● = gt)",
            &["pattern", "source", "cluster", "x", "y"],
            &emb_rows,
        )
    );
    bench.finish();
}
