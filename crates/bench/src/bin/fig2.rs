//! Fig. 2 — Ensemble test with iBoxNet on the India-Cellular-like profile.
//!
//! The paper plots, per run, average rate vs. 95th-percentile delay and
//! vs. packet loss %, for Cubic (the control, used to fit the models) and
//! Vegas (the treatment, never seen during fitting), ground truth vs.
//! iBoxNet — and verifies the match with a two-sample KS test.
//!
//! This binary prints the distribution summaries (mean / quartiles) of
//! each metric for all four populations, the per-run scatter points, and
//! the KS statistics/p-values.

use ibox::abtest::{ensemble_test_jobs, ModelKind};
use ibox_bench::{cell, dist_cells, render_table, Scale};
use ibox_sim::SimTime;
use ibox_testbed::pantheon::{generate_paired_datasets_jobs, PANTHEON_DURATION};
use ibox_testbed::Profile;

fn main() {
    let bench = ibox_bench::BenchRun::start("fig2");
    let scale = Scale::from_args();
    let jobs = ibox_bench::jobs_from_args();
    let n = scale.pick(6, 30);
    let duration = match scale {
        Scale::Quick => SimTime::from_secs(10),
        Scale::Full => PANTHEON_DURATION,
    };
    ibox_obs::info!("fig2: generating {n} paired cubic/vegas runs on india-cellular…");
    let ds = generate_paired_datasets_jobs(
        Profile::IndiaCellular,
        &["cubic", "vegas"],
        n,
        duration,
        2_000,
        jobs,
    );
    ibox_obs::info!("fig2: fitting iBoxNet per trace and replaying both protocols…");
    let report = ensemble_test_jobs(&ds[0], &ds[1], ModelKind::IBoxNet, duration, 7, jobs);

    // Distribution summary (the shape Fig. 2's markers encode).
    let mut rows = Vec::new();
    for (label, ms) in [
        ("Cubic GT", &report.gt_a),
        ("Cubic iBoxNet", &report.sim_a),
        ("Vegas GT", &report.gt_b),
        ("Vegas iBoxNet", &report.sim_b),
    ] {
        let rates: Vec<f64> = ms.iter().map(|m| m.avg_rate_mbps).collect();
        let delays: Vec<f64> = ms.iter().map(|m| m.p95_delay_ms).collect();
        let losses: Vec<f64> = ms.iter().map(|m| m.loss_pct).collect();
        let mut row = vec![label.to_string()];
        row.extend(dist_cells(&rates));
        row.extend(dist_cells(&delays));
        row.extend(dist_cells(&losses));
        rows.push(row);
    }
    print!(
        "{}",
        render_table(
            "Fig. 2 — metric distributions (rate Mbps | p95 delay ms | loss %)",
            &[
                "population",
                "rate.mean",
                "rate.p25",
                "rate.p50",
                "rate.p75",
                "d95.mean",
                "d95.p25",
                "d95.p50",
                "d95.p75",
                "loss.mean",
                "loss.p25",
                "loss.p50",
                "loss.p75",
            ],
            &rows,
        )
    );

    // KS verification.
    let ks_rows = vec![
        vec![
            "p95 delay".to_string(),
            cell(report.ks_delay.a.statistic, 3),
            cell(report.ks_delay.a.p_value, 3),
            cell(report.ks_delay.b.statistic, 3),
            cell(report.ks_delay.b.p_value, 3),
        ],
        vec![
            "loss %".to_string(),
            cell(report.ks_loss.a.statistic, 3),
            cell(report.ks_loss.a.p_value, 3),
            cell(report.ks_loss.b.statistic, 3),
            cell(report.ks_loss.b.p_value, 3),
        ],
        vec![
            "avg rate".to_string(),
            cell(report.ks_rate.a.statistic, 3),
            cell(report.ks_rate.a.p_value, 3),
            cell(report.ks_rate.b.statistic, 3),
            cell(report.ks_rate.b.p_value, 3),
        ],
    ];
    print!(
        "{}",
        render_table(
            "Fig. 2 — two-sample KS tests, GT vs iBoxNet (match if p > 0.05)",
            &["metric", "D(cubic)", "p(cubic)", "D(vegas)", "p(vegas)"],
            &ks_rows,
        )
    );

    // Per-run scatter points (Fig. 2's individual markers).
    let mut scatter = Vec::new();
    for (label, ms) in [
        ("cubic/gt", &report.gt_a),
        ("cubic/iboxnet", &report.sim_a),
        ("vegas/gt", &report.gt_b),
        ("vegas/iboxnet", &report.sim_b),
    ] {
        for m in ms.iter() {
            scatter.push(vec![
                label.to_string(),
                cell(m.avg_rate_mbps, 3),
                cell(m.p95_delay_ms, 1),
                cell(m.loss_pct, 2),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Fig. 2 — per-run scatter points",
            &["series", "rate_mbps", "p95_delay_ms", "loss_pct"],
            &scatter,
        )
    );
    bench.finish();
}
