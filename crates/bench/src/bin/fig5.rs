//! Fig. 5 — CDF of reordering rate over 1-second windows on the
//! Pantheon-like test set (Vegas).
//!
//! Four curves, as in the paper:
//! * **Ground truth** — the real (simulated-cellular) Vegas test traces;
//! * **iBoxML** — the pure-ML model (trained only to match delays, yet it
//!   reproduces some reordering "though … no explicit knowledge of
//!   reordering was provided during training");
//! * **iBoxNet + LSTM** — iBoxNet output augmented by the LSTM reordering
//!   predictor (§5.1);
//! * **iBoxNet + Linear** — the lightweight logistic-regression variant.
//!
//! Plain iBoxNet produces *zero* reordering (its curve is a step at 0),
//! which is the gap the melding closes.

use ibox::iboxml::{IBoxMl, IBoxMlConfig};
use ibox::meld::reorder::{augment_with_reordering, ReorderLinear, ReorderLstm};
use ibox::IBoxNet;
use ibox_bench::{cell, render_table, Scale};
use ibox_ml::TrainConfig;
use ibox_sim::SimTime;
use ibox_stats::Cdf;
use ibox_testbed::pantheon::generate_paired_datasets_jobs;
use ibox_testbed::Profile;
use ibox_trace::metrics::reordering_rates;
use ibox_trace::FlowTrace;

fn pooled_rates(traces: &[FlowTrace]) -> Vec<f64> {
    traces.iter().flat_map(|t| reordering_rates(t, 1.0)).collect()
}

fn main() {
    let bench = ibox_bench::BenchRun::start("fig5");
    let scale = Scale::from_args();
    let jobs = ibox_bench::jobs_from_args();
    let n_train = scale.pick(4, 24);
    let n_test = scale.pick(3, 16);
    let duration = match scale {
        Scale::Quick => SimTime::from_secs(10),
        Scale::Full => SimTime::from_secs(30),
    };
    ibox_obs::info!("fig5: generating {} paired cubic/vegas cellular runs…", n_train + n_test);
    let ds = generate_paired_datasets_jobs(
        Profile::IndiaCellular,
        &["cubic", "vegas"],
        n_train + n_test,
        duration,
        9_000,
        jobs,
    );
    let (cubic_train, _cubic_test) = ds[0].split(n_train as f64 / (n_train + n_test) as f64);
    let (vegas_train, vegas_test) = ds[1].split(n_train as f64 / (n_train + n_test) as f64);

    // iBoxML trained on the Vegas training split (§4.1's setup).
    ibox_obs::info!("fig5: training iBoxML on {} vegas traces…", vegas_train.len());
    let ml_cfg = IBoxMlConfig::builder()
        .hidden_sizes([24, 24])
        .with_cross_traffic(false)
        .train(TrainConfig {
            epochs: scale.pick(4, 10),
            lr: 3e-3,
            tbptt: 64,
            clip: 5.0,
            loss_weight: 0.2,
            delay_weight: 1.0,
            ..Default::default()
        })
        .seed(17)
        .build();
    let iboxml = IBoxMl::fit(&vegas_train.traces, ml_cfg);

    // Reordering predictors trained on the Cubic training split (§5.1).
    ibox_obs::info!("fig5: training reorder predictors on {} cubic traces…", cubic_train.len());
    let lstm = ReorderLstm::fit(&cubic_train.traces, 16, scale.pick(3, 8), 3);
    let linear = ReorderLinear::fit(&cubic_train.traces);

    // Evaluate on the Vegas test split — each test trace is independent,
    // so the per-trace fit/replay/augment pipeline runs on the pool.
    ibox_obs::info!("fig5: evaluating on {} vegas test traces…", vegas_test.len());
    let evaluated = ibox_runner::run_scoped(vegas_test.traces.len(), jobs, |i| {
        let t = &vegas_test.traces[i];
        // iBoxNet fitted on this instance's Cubic run would be the fig2
        // flow; for the reordering figure the paper replays the test set
        // through models fitted on training traces — fitting on the test
        // trace itself is equivalent for reordering (iBoxNet can never
        // reorder regardless of fit).
        let net = IBoxNet::fit(t).simulate("vegas", duration, 1_000 + i as u64);
        let net_lstm = augment_with_reordering(&net, &lstm, 50 + i as u64);
        let net_linear = augment_with_reordering(&net, &linear, 90 + i as u64);
        (t.clone(), iboxml.predict_trace(t), net, net_lstm, net_linear)
    });
    let mut gt_traces = Vec::new();
    let mut ml_traces = Vec::new();
    let mut net_traces = Vec::new();
    let mut net_lstm_traces = Vec::new();
    let mut net_linear_traces = Vec::new();
    for (gt, ml, net, net_lstm, net_linear) in evaluated {
        gt_traces.push(gt);
        ml_traces.push(ml);
        net_traces.push(net);
        net_lstm_traces.push(net_lstm);
        net_linear_traces.push(net_linear);
    }

    let series: Vec<(&str, Vec<f64>)> = vec![
        ("ground-truth", pooled_rates(&gt_traces)),
        ("iboxml", pooled_rates(&ml_traces)),
        ("iboxnet", pooled_rates(&net_traces)),
        ("iboxnet+lstm", pooled_rates(&net_lstm_traces)),
        ("iboxnet+linear", pooled_rates(&net_linear_traces)),
    ];

    // CDF curves on the paper's x-range [0, 0.1].
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 * 0.005).collect();
    let mut rows = Vec::new();
    for x in &grid {
        let mut row = vec![cell(*x, 3)];
        for (_, sample) in &series {
            let cdf = Cdf::new(sample);
            row.push(cell(cdf.eval(*x), 3));
        }
        rows.push(row);
    }
    print!(
        "{}",
        render_table(
            "Fig. 5 — CDF of per-1s-window reordering rate (Vegas test set)",
            &["reorder_rate", "gt", "iboxml", "iboxnet", "iboxnet+lstm", "iboxnet+linear"],
            &rows,
        )
    );

    // Mean reordering rates — the one-number summary.
    let mean_rows: Vec<Vec<String>> = series
        .iter()
        .map(|(name, s)| {
            let mean = if s.is_empty() { 0.0 } else { s.iter().sum::<f64>() / s.len() as f64 };
            vec![name.to_string(), cell(mean, 4)]
        })
        .collect();
    print!(
        "{}",
        render_table("Fig. 5 — mean per-window reordering rate", &["series", "mean"], &mean_rows,)
    );
    bench.finish();
}
