//! Inference-throughput guardrails for the batched [`InferenceSession`].
//!
//! Three measurements via the vendored criterion's timed API, over the
//! same model, inputs, and packet count:
//!
//! 1. **Batched** — one `InferenceSession` with [`N_STREAMS`] slots,
//!    one `step_batch` per packet-step: one fused matmul per layer, zero
//!    per-packet allocation.
//! 2. **Per-stream** — the deprecated single-stream
//!    [`SequenceModel::step_inference`] API called once per packet per
//!    stream: a throwaway one-slot session per call.
//! 3. **Legacy** — the pre-redesign replay hot path reproduced in this
//!    binary (so the library can never "optimize" its own baseline
//!    away): fresh stack workspace + training cache per packet, one
//!    matvec chain per stream, allocating head `forward`s.
//!
//! All arms are cross-checked bitwise identical before timing — the
//! speedup must come from the kernel shape, never from different math.
//! That identity also bounds it: sigmoid/tanh are pinned to the scalar
//! libm calls (any vectorized variant would change bits), and at replay
//! model sizes those transcendentals are over half of every packet's
//! cost in *every* arm. The batched win is therefore the allocation-free
//! session plus fused matmuls — a steady 1.2–1.5×, not the
//! order-of-magnitude amortization a GPU batch would show. The in-binary
//! assert is a regression floor on that real contrast.
//!
//! Results land as `infer.*` gauges in `BENCH_infer.json`. With
//! `--baseline <path>` the previously committed manifest is read *before*
//! the new one is written and the process exits nonzero if batched
//! throughput regressed by more than 20% (used by
//! `scripts/check.sh --perf`).
//!
//! Run: `cargo run -p ibox-bench --release --bin infer [--quick]
//! [--baseline BENCH_infer.json]`
//!
//! [`InferenceSession`]: ibox_ml::InferenceSession
//! [`SequenceModel::step_inference`]: ibox_ml::SequenceModel::step_inference

use std::hint::black_box;

use criterion::{Criterion, Stats};
use ibox_bench::{cell, render_table, Scale};
use ibox_ml::{InferenceSession, Prediction, SequenceModel, SequenceModelConfig};

/// Concurrent connections driven through one session.
const N_STREAMS: usize = 16;
/// Packet-steps per stream per measured iteration.
const STEPS: usize = 128;
/// Feature width of the replay path (delay/loss/send features).
const INPUT: usize = 6;
/// Hidden width — one layer, sized so a single stream's weights stay
/// cache-resident and the contrast isolates the batching, not the model.
const HIDDEN: usize = 16;

fn model() -> SequenceModel {
    SequenceModel::new(SequenceModelConfig {
        input_size: INPUT,
        hidden_sizes: vec![HIDDEN],
        predict_loss: true,
        seed: 11,
    })
}

/// Per-step input planes, `[N_STREAMS * INPUT]` each — deterministic,
/// bounded, distinct per stream.
fn input_planes() -> Vec<Vec<f32>> {
    (0..STEPS)
        .map(|t| {
            (0..N_STREAMS * INPUT)
                .map(|k| ((t as f32 + 1.3) * (k as f32 + 0.7)).sin() * 0.5)
                .collect()
        })
        .collect()
}

/// Drive every plane through the batched session; returns the final
/// predictions (consumed so the work cannot be optimized away).
fn run_batched(
    model: &SequenceModel,
    session: &mut InferenceSession,
    planes: &[Vec<f32>],
) -> Vec<Prediction> {
    let mut last = Vec::new();
    for plane in planes {
        let preds = session.step_batch(model, plane);
        last.clear();
        last.extend_from_slice(preds);
    }
    last
}

/// The same packets through the deprecated per-stream API: one
/// `step_inference` call — a throwaway one-slot session — per packet
/// per stream.
fn run_per_stream(model: &SequenceModel, planes: &[Vec<f32>]) -> Vec<Prediction> {
    let mut states: Vec<_> = (0..N_STREAMS).map(|_| model.zero_state()).collect();
    let mut last = Vec::new();
    for plane in planes {
        last.clear();
        for (s, state) in states.iter_mut().enumerate() {
            last.push(model.step_inference(&plane[s * INPUT..(s + 1) * INPUT], state));
        }
    }
    last
}

/// The pre-redesign per-stream hot path, reproduced faithfully: per
/// packet per stream, a fresh stack workspace and training cache, one
/// matvec chain, and the allocating head `forward`s.
fn run_legacy(model: &SequenceModel, planes: &[Vec<f32>]) -> Vec<Prediction> {
    let mut states: Vec<_> = (0..N_STREAMS).map(|_| model.zero_state()).collect();
    let mut last = Vec::new();
    for plane in planes {
        last.clear();
        for (s, state) in states.iter_mut().enumerate() {
            let x = &plane[s * INPUT..(s + 1) * INPUT];
            let mut ws = model.stack().workspace();
            let mut cache = model.stack().new_cache();
            model.stack().step_into(x, state, &mut ws, &mut cache);
            let top = &state.last().expect("nonempty stack").h;
            let g = model.delay_head().forward(top);
            let p_loss = model.loss_head().map_or(0.0, |h| h.forward(top));
            last.push(Prediction { mu: g.mu, var: g.var, p_loss });
        }
    }
    last
}

/// Fresh session with every slot held — the steady replay state.
fn full_session(model: &SequenceModel) -> InferenceSession {
    let mut session = InferenceSession::new(model, N_STREAMS);
    for _ in 0..N_STREAMS {
        session.acquire_slot().expect("fresh session has free slots");
    }
    session
}

/// Throughput from the fastest sample: background load only ever adds
/// time, so the min is the noise-robust estimate.
fn packets_per_sec(stats: &Stats) -> f64 {
    (N_STREAMS * STEPS) as f64 * 1e9 / stats.min_ns.max(1e-9)
}

/// Read `--baseline <path>` from the args, if present.
fn baseline_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--baseline" {
            return args.next();
        }
    }
    None
}

/// Compare the fresh gauges against a committed manifest. Rates must not
/// fall below 80% of the baseline.
fn check_baseline(path: &str, fresh: &[(&str, f64)]) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read baseline {path}: {e}")],
    };
    let json: serde_json::JsonValue = match serde_json::parse_value(&text) {
        Ok(v) => v,
        Err(e) => return vec![format!("cannot parse baseline {path}: {e}")],
    };
    let gauges = json.get("metrics").and_then(|m| m.get("gauges"));
    let mut failures = Vec::new();
    for (name, new) in fresh {
        let Some(old) = gauges.and_then(|g| g.get(name)).and_then(|v| v.as_f64()) else {
            continue; // gauge not in the committed manifest yet
        };
        if *new < old * 0.80 {
            failures.push(format!("{name}: {new:.0} vs baseline {old:.0} (>20% regression)"));
        }
    }
    failures
}

fn main() {
    let bench = ibox_bench::BenchRun::start("infer");
    let mut criterion = Criterion::default();

    let model = model();
    let planes = input_planes();

    // Cross-check: all three arms are the same math, bitwise. The batched
    // kernels reuse the canonical dot4 summation, so this is exact
    // equality, not a tolerance.
    let mut session = full_session(&model);
    let batched_out = run_batched(&model, &mut session, &planes);
    let per_stream_out = run_per_stream(&model, &planes);
    let legacy_out = run_legacy(&model, &planes);
    assert_eq!(batched_out, per_stream_out, "batched inference must be bitwise identical");
    assert_eq!(batched_out, legacy_out, "batched inference must match the pre-redesign path");

    let mut group = criterion.benchmark_group("inference");
    group.sample_size(Scale::from_args().pick(10, 30));
    let batched = group
        .bench_function_timed("batched_session", |b| {
            b.iter(|| black_box(run_batched(black_box(&model), &mut session, black_box(&planes))))
        })
        .expect("measured");
    let per_stream = group
        .bench_function_timed("per_stream_step_inference", |b| {
            b.iter(|| black_box(run_per_stream(black_box(&model), black_box(&planes))))
        })
        .expect("measured");
    let legacy = group
        .bench_function_timed("legacy_pre_redesign", |b| {
            b.iter(|| black_box(run_legacy(black_box(&model), black_box(&planes))))
        })
        .expect("measured");
    group.finish();

    let batched_pps = packets_per_sec(&batched);
    let per_stream_pps = packets_per_sec(&per_stream);
    let legacy_pps = packets_per_sec(&legacy);
    let speedup = batched_pps / per_stream_pps.max(1e-9);

    let registry = ibox_obs::global();
    registry.gauge("infer.batched_pps").set(batched_pps);
    registry.gauge("infer.per_stream_pps").set(per_stream_pps);
    registry.gauge("infer.legacy_pps").set(legacy_pps);
    registry.gauge("infer.speedup_x").set(speedup);
    registry.gauge("infer.n_streams").set(N_STREAMS as f64);

    print!(
        "{}",
        render_table(
            "ML inference throughput (batched session vs per-stream step_inference)",
            &["metric", "value"],
            &[
                vec!["batched packets/s".into(), cell(batched_pps, 0)],
                vec!["per-stream packets/s".into(), cell(per_stream_pps, 0)],
                vec!["legacy packets/s".into(), cell(legacy_pps, 0)],
                vec!["speedup".into(), format!("{speedup:.2}x")],
                vec!["streams".into(), format!("{N_STREAMS}")],
            ],
        )
    );

    // Read the committed baseline BEFORE finish() overwrites the file.
    let baseline_failures = baseline_from_args()
        .map(|p| check_baseline(&p, &[("infer.batched_pps", batched_pps)]))
        .unwrap_or_default();

    bench.finish();

    // Regression floor, not an amortization claim: the bitwise-pinned
    // scalar tanh/sigmoid floor every arm (see module docs), so the
    // honest contrast sits around 1.4x. Anything under 1.2x means the
    // session stopped paying for itself.
    assert!(
        speedup >= 1.2,
        "batched session must be >= 1.2x the per-stream path, got {speedup:.2}x"
    );
    if !baseline_failures.is_empty() {
        for f in &baseline_failures {
            eprintln!("infer regression: {f}");
        }
        std::process::exit(1);
    }
}
