//! Fig. 3 — Ablations of the cross-traffic input.
//!
//! (a) iBoxNet *without* the cross-traffic input, and (b) a calibrated
//! emulator with a *statistical packet loss* model in place of cross
//! traffic (as in Pantheon \[45\]). The paper's claim: both "yield a worse
//! match with the ground truth than iBoxNet", underscoring that cross
//! traffic must be modelled, and modelled with care.
//!
//! This binary runs the same ensemble test as `fig2` under all three
//! model kinds and prints the KS statistics side by side — the "worse
//! match" shows up as a larger KS D (smaller p).

use ibox::abtest::{ensemble_test_jobs, EnsembleReport, ModelKind};
use ibox_bench::{cell, render_table, Scale};
use ibox_sim::SimTime;
use ibox_testbed::pantheon::{generate_paired_datasets_jobs, PANTHEON_DURATION};
use ibox_testbed::Profile;

fn main() {
    let bench = ibox_bench::BenchRun::start("fig3");
    let scale = Scale::from_args();
    let jobs = ibox_bench::jobs_from_args();
    let n = scale.pick(6, 30);
    let duration = match scale {
        Scale::Quick => SimTime::from_secs(10),
        Scale::Full => PANTHEON_DURATION,
    };
    ibox_obs::info!("fig3: generating {n} paired cubic/vegas runs…");
    let ds = generate_paired_datasets_jobs(
        Profile::IndiaCellular,
        &["cubic", "vegas"],
        n,
        duration,
        2_000,
        jobs,
    );

    let kinds = [
        ModelKind::IBoxNet,
        ModelKind::IBoxNetNoCross,
        ModelKind::StatisticalLoss,
        // Beyond the paper: iBoxNet with the reordering stage melded into
        // the emulator itself (fixes the loss-based senders' dup-ack bias
        // on reordering paths).
        ModelKind::IBoxNetReorder,
    ];
    let reports: Vec<EnsembleReport> = kinds
        .iter()
        .map(|k| {
            ibox_obs::info!("fig3: evaluating {}…", k.name());
            ensemble_test_jobs(&ds[0], &ds[1], k.clone(), duration, 7, jobs)
        })
        .collect();

    let mut rows = Vec::new();
    for r in &reports {
        rows.push(vec![
            r.model.clone(),
            cell(r.ks_delay.b.statistic, 3),
            cell(r.ks_delay.b.p_value, 3),
            cell(r.ks_loss.b.statistic, 3),
            cell(r.ks_loss.b.p_value, 3),
            cell(r.ks_rate.b.statistic, 3),
            cell(r.ks_rate.b.p_value, 3),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Fig. 3 — Vegas-vs-GT KS distance per model (smaller D = better match)",
            &["model", "D(d95)", "p(d95)", "D(loss)", "p(loss)", "D(rate)", "p(rate)"],
            &rows,
        )
    );

    let mut rows_a = Vec::new();
    for r in &reports {
        rows_a.push(vec![
            r.model.clone(),
            cell(r.ks_delay.a.statistic, 3),
            cell(r.ks_delay.a.p_value, 3),
            cell(r.ks_loss.a.statistic, 3),
            cell(r.ks_loss.a.p_value, 3),
            cell(r.ks_rate.a.statistic, 3),
            cell(r.ks_rate.a.p_value, 3),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Fig. 3 — Cubic-vs-GT KS distance per model",
            &["model", "D(d95)", "p(d95)", "D(loss)", "p(loss)", "D(rate)", "p(rate)"],
            &rows_a,
        )
    );

    // Mean-delay comparison: the no-CT ablation's signature failure is an
    // optimistic (too-low-delay, too-high-rate) world.
    let mut bias_rows = Vec::new();
    for r in &reports {
        let mean = |v: &[ibox_trace::TraceMetrics], f: fn(&ibox_trace::TraceMetrics) -> f64| {
            v.iter().map(f).sum::<f64>() / v.len() as f64
        };
        bias_rows.push(vec![
            r.model.clone(),
            cell(mean(&r.gt_b, |m| m.p95_delay_ms), 1),
            cell(mean(&r.sim_b, |m| m.p95_delay_ms), 1),
            cell(mean(&r.gt_b, |m| m.avg_rate_mbps), 2),
            cell(mean(&r.sim_b, |m| m.avg_rate_mbps), 2),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Fig. 3 — mean Vegas metrics: GT vs model",
            &["model", "gt.d95_ms", "sim.d95_ms", "gt.rate", "sim.rate"],
            &bias_rows,
        )
    );
    bench.finish();
}
