//! Design-choice ablations called out in DESIGN.md.
//!
//! Not a paper figure — this quantifies the reproduction's own knobs:
//!
//! 1. **Cross-traffic estimation bin width** (100 ms default): accuracy of
//!    the recovered byte total and its temporal localization vs. ground
//!    truth, across bin widths.
//! 2. **Bandwidth-estimator window** (1 s per the paper): sensitivity of
//!    the `b` estimate to the sliding-window length.
//! 3. **Replay packet size** for the estimated cross traffic.
//!
//! Run: `cargo run -p ibox-bench --release --bin ablations [--quick]`

use ibox::estimator::{CrossTrafficEstimate, StaticParams};
use ibox_bench::{cell, render_table, Scale};
use ibox_cc::Cubic;
use ibox_sim::{CrossTrafficCfg, PathConfig, PathEmulator, SimTime};
use ibox_trace::series::peak_recv_rate_bps;
use ibox_trace::FlowTrace;

/// Ground truth: known 8 Mbps path with a 2 Mbps CBR burst in [5, 15) s.
fn gt_trace(seed: u64) -> FlowTrace {
    let emu = PathEmulator::from_spec(
        ibox_sim::PathSpec::single(PathConfig::simple(8e6, SimTime::from_millis(30), 120_000)),
        SimTime::from_secs(20),
    )
    .with_cross_traffic(CrossTrafficCfg::cbr(
        2e6,
        SimTime::from_secs(5),
        SimTime::from_secs(15),
    ));
    emu.run_sender(Box::new(Cubic::new()), "m", seed)
        .traces
        .into_iter()
        .next()
        .expect("one recorded flow")
        .normalized()
}

fn main() {
    let bench = ibox_bench::BenchRun::start("ablations");
    let scale = Scale::from_args();
    let jobs = ibox_bench::jobs_from_args();
    let n = scale.pick(2, 6);
    let traces: Vec<FlowTrace> = ibox_runner::run_scoped(n, jobs, |i| gt_trace(i as u64));
    const TRUE_CT_BYTES: f64 = 2e6 / 8.0 * 10.0; // 2.5 MB

    // 1. CT bin width sweep.
    let mut rows = Vec::new();
    for bin in [0.02, 0.05, 0.1, 0.2, 0.5, 1.0] {
        let mut totals = Vec::new();
        let mut localization = Vec::new();
        for t in &traces {
            let params = StaticParams::estimate(t);
            let est = CrossTrafficEstimate::estimate(t, &params, bin);
            totals.push(est.total_bytes() / TRUE_CT_BYTES);
            let inside = est.bytes_between(4.5, 15.5);
            localization.push(inside / est.total_bytes().max(1.0));
        }
        rows.push(vec![
            format!("{:.0} ms", bin * 1e3),
            cell(ibox_stats::mean(&totals), 3),
            cell(ibox_stats::mean(&localization), 3),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 1 — CT estimate vs bin width (recovered/true bytes; in-window share)",
            &["bin", "recovered_ratio", "localization"],
            &rows,
        )
    );

    // 2. Bandwidth window sweep.
    let mut rows = Vec::new();
    for window in [0.1, 0.25, 0.5, 1.0, 2.0, 5.0] {
        let ratios: Vec<f64> = traces.iter().map(|t| peak_recv_rate_bps(t, window) / 8e6).collect();
        rows.push(vec![format!("{window:.2} s"), cell(ibox_stats::mean(&ratios), 3)]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 2 — bandwidth estimate vs sliding-window length (est/true)",
            &["window", "b_ratio"],
            &rows,
        )
    );

    // 3. Replay packet-size sweep: fidelity of the replayed counterfactual
    // under different packetizations of the same estimated byte series.
    let mut rows = Vec::new();
    let reference = ibox::IBoxNet::fit(&traces[0]);
    for pkt in [400u32, 800, 1200, 1500] {
        // Re-simulate with this packet size for the replay source.
        let emu = ibox_sim::PathEmulator::from_spec(
            ibox_sim::PathSpec::single(reference.path_config()),
            SimTime::from_secs(20),
        )
        .with_cross_traffic(reference.cross.to_replay(pkt));
        let out = emu.run_sender(Box::new(Cubic::new()), "m", 77);
        let m = ibox_trace::metrics::TraceMetrics::of(&out.traces[0]);
        rows.push(vec![
            format!("{pkt} B"),
            cell(m.avg_rate_mbps, 2),
            cell(m.p95_delay_ms, 1),
            cell(m.loss_pct, 2),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 3 — counterfactual Cubic metrics vs CT replay packet size",
            &["pkt_size", "rate_mbps", "p95_ms", "loss_pct"],
            &rows,
        )
    );
    bench.finish();
}
