//! Steady-state compute-throughput guardrails for the hot paths.
//!
//! Three measurements via the vendored criterion's timed API:
//!
//! 1. **LSTM train-step throughput** — the workspace (allocation-free)
//!    kernels vs a naive reference compiled into this binary. The
//!    reference reproduces the pre-optimization structure: a fresh
//!    allocation for every gate buffer and cache field each step, and
//!    plain sequential scalar dot products. Asserts the workspace path is
//!    at least 1.5× faster.
//! 2. **Simulator packet throughput** on a saturated bottleneck.
//! 3. **End-to-end [`ibox::IBoxMl::fit`] wall time** on a synthetic
//!    dataset.
//!
//! Results land as `perf.*` gauges in `BENCH_perf.json`. With
//! `--baseline <path>` the previously committed manifest is read *before*
//! the new one is written and the process exits nonzero if any throughput
//! regressed by more than 20% (used by `scripts/check.sh --perf`).
//!
//! Run: `cargo run -p ibox-bench --release --bin perf [--quick]
//! [--baseline BENCH_perf.json]`

use std::hint::black_box;

use criterion::{Criterion, Stats};
use ibox::{IBoxMl, IBoxMlConfig};
use ibox_bench::{cell, render_table, Scale};
use ibox_ml::lstm::{Lstm, LstmState, LstmWorkspace, StepCache};
use ibox_ml::matrix::Mat;
use ibox_ml::TrainConfig;
use ibox_sim::{
    CrossTrafficCfg, FixedWindow, FlowConfig, PathConfig, ReorderCfg, SimTime, Simulation,
};
use ibox_trace::FlowTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Layer shape for the train-step benchmark (input × hidden).
const INPUT: usize = 32;
const HIDDEN: usize = 64;
/// Timesteps per measured train step (one TBPTT chunk).
const CHUNK: usize = 32;

// ---------------------------------------------------------------------
// Naive reference: the pre-optimization kernel structure. Every step
// allocates its gate buffers and cache vectors, and every matrix product
// is a plain sequential scalar loop — no fused 4-lane accumulators, no
// reuse. Kept in this binary (not the library) so the library can never
// "optimize" its own baseline away.
// ---------------------------------------------------------------------

fn naive_matvec(m: &Mat, v: &[f32]) -> Vec<f32> {
    let (rows, cols) = (m.rows(), m.cols());
    let mut y = vec![0.0f32; rows];
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &m.data()[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        for (a, b) in row.iter().zip(v) {
            acc += a * b;
        }
        *yr = acc;
    }
    y
}

fn naive_matvec_t(m: &Mat, u: &[f32]) -> Vec<f32> {
    let (rows, cols) = (m.rows(), m.cols());
    let mut y = vec![0.0f32; cols];
    for (r, ur) in u.iter().enumerate().take(rows) {
        if *ur == 0.0 {
            continue;
        }
        let row = &m.data()[r * cols..(r + 1) * cols];
        for (yc, a) in y.iter_mut().zip(row) {
            *yc += ur * a;
        }
    }
    y
}

fn naive_add_outer(g: &mut [f32], u: &[f32], v: &[f32]) {
    let cols = v.len();
    for (r, ur) in u.iter().enumerate() {
        if *ur == 0.0 {
            continue;
        }
        for (c, vc) in v.iter().enumerate() {
            g[r * cols + c] += ur * vc;
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-step activations, freshly allocated every step (as the old
/// `StepCache` clone-per-step path did).
struct NaiveCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

fn naive_step(
    l: &Lstm,
    x: &[f32],
    h_prev: &[f32],
    c_prev: &[f32],
) -> (Vec<f32>, Vec<f32>, NaiveCache) {
    let h = l.hidden_size();
    let mut z = naive_matvec(&l.wx, x);
    let zh = naive_matvec(&l.wh, h_prev);
    for (a, b) in z.iter_mut().zip(&zh) {
        *a += b;
    }
    for (a, b) in z.iter_mut().zip(&l.b) {
        *a += b;
    }
    let mut cache = NaiveCache {
        x: x.to_vec(),
        h_prev: h_prev.to_vec(),
        c_prev: c_prev.to_vec(),
        i: vec![0.0; h],
        f: vec![0.0; h],
        g: vec![0.0; h],
        o: vec![0.0; h],
        tanh_c: vec![0.0; h],
    };
    let mut h_new = vec![0.0f32; h];
    let mut c_new = vec![0.0f32; h];
    for k in 0..h {
        cache.i[k] = sigmoid(z[k]);
        cache.f[k] = sigmoid(z[h + k]);
        cache.g[k] = z[2 * h + k].tanh();
        cache.o[k] = sigmoid(z[3 * h + k]);
    }
    for k in 0..h {
        let c = cache.f[k] * cache.c_prev[k] + cache.i[k] * cache.g[k];
        c_new[k] = c;
        cache.tanh_c[k] = c.tanh();
        h_new[k] = cache.o[k] * cache.tanh_c[k];
    }
    (h_new, c_new, cache)
}

#[allow(clippy::too_many_arguments)]
fn naive_step_backward(
    l: &Lstm,
    cache: &NaiveCache,
    dh: &[f32],
    dh_next: &[f32],
    dc_next: &[f32],
    gwx: &mut [f32],
    gwh: &mut [f32],
    gb: &mut [f32],
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let h = l.hidden_size();
    let mut dz = vec![0.0f32; 4 * h];
    let mut dc_prev = vec![0.0f32; h];
    for k in 0..h {
        let dht = dh[k] + dh_next[k];
        let do_ = dht * cache.tanh_c[k];
        let dc = dht * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]) + dc_next[k];
        let di = dc * cache.g[k];
        let df = dc * cache.c_prev[k];
        let dg = dc * cache.i[k];
        dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
        dz[h + k] = df * cache.f[k] * (1.0 - cache.f[k]);
        dz[2 * h + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
        dz[3 * h + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
        dc_prev[k] = dc * cache.f[k];
    }
    naive_add_outer(gwx, &dz, &cache.x);
    naive_add_outer(gwh, &dz, &cache.h_prev);
    for (a, b) in gb.iter_mut().zip(&dz) {
        *a += b;
    }
    let dx = naive_matvec_t(&l.wx, &dz);
    let dh_prev = naive_matvec_t(&l.wh, &dz);
    (dx, dh_prev, dc_prev)
}

/// One naive train step: forward `CHUNK` timesteps with per-step
/// allocation, then backward, into freshly zeroed gradient buffers.
fn naive_train_step(l: &Lstm, xs: &[Vec<f32>]) -> f32 {
    let h = l.hidden_size();
    let mut gwx = vec![0.0f32; l.wx.len()];
    let mut gwh = vec![0.0f32; l.wh.len()];
    let mut gb = vec![0.0f32; 4 * h];
    let mut h_t = vec![0.0f32; h];
    let mut c_t = vec![0.0f32; h];
    let mut caches = Vec::new();
    for x in xs {
        let (hn, cn, cache) = naive_step(l, x, &h_t, &c_t);
        h_t = hn;
        c_t = cn;
        caches.push(cache);
    }
    let mut dh_next = vec![0.0f32; h];
    let mut dc_next = vec![0.0f32; h];
    for cache in caches.iter().rev() {
        let dh: Vec<f32> = cache.tanh_c.iter().map(|v| 2.0 * v).collect();
        let (_dx, dh_prev, dc_prev) =
            naive_step_backward(l, cache, &dh, &dh_next, &dc_next, &mut gwx, &mut gwh, &mut gb);
        dh_next = dh_prev;
        dc_next = dc_prev;
    }
    h_t.iter().sum::<f32>() + gb.iter().sum::<f32>()
}

/// Reusable buffers for the workspace train step — allocated once.
struct WorkspaceScratch {
    ws: LstmWorkspace,
    caches: Vec<StepCache>,
    state: LstmState,
    dh: Vec<f32>,
    dh_next: Vec<f32>,
    dc_next: Vec<f32>,
    dx: Vec<f32>,
    dh_prev: Vec<f32>,
    dc_prev: Vec<f32>,
}

impl WorkspaceScratch {
    fn new(l: &Lstm) -> Self {
        Self {
            ws: LstmWorkspace::for_layer(l),
            caches: (0..CHUNK).map(|_| StepCache::for_layer(l)).collect(),
            state: LstmState::zeros(l.hidden_size()),
            dh: vec![0.0; l.hidden_size()],
            dh_next: vec![0.0; l.hidden_size()],
            dc_next: vec![0.0; l.hidden_size()],
            dx: vec![0.0; l.input_size()],
            dh_prev: vec![0.0; l.hidden_size()],
            dc_prev: vec![0.0; l.hidden_size()],
        }
    }
}

/// The same train step through the workspace kernels — allocation-free
/// once `scratch` is warm.
fn workspace_train_step(l: &mut Lstm, xs: &[Vec<f32>], s: &mut WorkspaceScratch) -> f32 {
    l.zero_grad();
    s.state.reset();
    for (x, cache) in xs.iter().zip(s.caches.iter_mut()) {
        l.step_into(x, &mut s.state, &mut s.ws, cache);
    }
    s.dh_next.fill(0.0);
    s.dc_next.fill(0.0);
    for cache in s.caches.iter().rev() {
        // Same synthetic loss gradient as the naive path: 2·tanh(c).
        for (d, state_c) in s.dh.iter_mut().zip(cache.tanh_c()) {
            *d = 2.0 * state_c;
        }
        l.step_backward_into(
            cache,
            &s.dh,
            &s.dh_next,
            &s.dc_next,
            &mut s.ws,
            &mut s.dx,
            &mut s.dh_prev,
            &mut s.dc_prev,
        );
        std::mem::swap(&mut s.dh_next, &mut s.dh_prev);
        std::mem::swap(&mut s.dc_next, &mut s.dc_prev);
    }
    s.state.h.iter().sum::<f32>() + l.gb.iter().sum::<f32>()
}

fn chunk_inputs() -> Vec<Vec<f32>> {
    (0..CHUNK)
        .map(|t| (0..INPUT).map(|k| ((t * INPUT + k) as f32 * 0.37).sin() * 0.5).collect())
        .collect()
}

/// Throughput from the *fastest* sample. Background load only ever adds
/// time, so the min is the noise-robust estimate — means flap by tens of
/// percent on a busy machine and would make the 1.5× assert and the
/// baseline gate flaky.
fn best_per_sec(stats: &Stats) -> f64 {
    1e9 / stats.min_ns.max(1e-9)
}

fn steps_per_sec(stats: &Stats) -> f64 {
    best_per_sec(stats) * CHUNK as f64
}

fn bench_train_steps(c: &mut Criterion) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut layer = Lstm::new(INPUT, HIDDEN, &mut rng);
    let xs = chunk_inputs();

    // Cross-check: both paths compute the same math (the kernels use a
    // different — canonical — summation order, so compare with tolerance).
    let mut scratch = WorkspaceScratch::new(&layer);
    let naive_out = naive_train_step(&layer, &xs);
    let ws_out = workspace_train_step(&mut layer, &xs, &mut scratch);
    assert!(
        (f64::from(naive_out) - f64::from(ws_out)).abs()
            < 1e-2 * (1.0 + f64::from(naive_out).abs()),
        "kernel mismatch: naive {naive_out} vs workspace {ws_out}"
    );

    let mut group = c.benchmark_group("lstm_train_step");
    group.sample_size(Scale::from_args().pick(10, 30));
    let naive = group
        .bench_function_timed("naive_reference", |b| {
            b.iter(|| black_box(naive_train_step(black_box(&layer), black_box(&xs))))
        })
        .expect("measured");
    let workspace = group
        .bench_function_timed("workspace_kernels", |b| {
            b.iter(|| {
                black_box(workspace_train_step(black_box(&mut layer), black_box(&xs), &mut scratch))
            })
        })
        .expect("measured");
    group.finish();
    (steps_per_sec(&naive), steps_per_sec(&workspace))
}

fn bench_sim(c: &mut Criterion) -> (f64, f64) {
    let secs = Scale::from_args().pick(2, 10) as u64;
    let build = |seed: u64| {
        let mut sim = Simulation::new(
            PathConfig::simple(20e6, SimTime::from_millis(20), 100_000),
            SimTime::from_secs(secs),
            seed,
        );
        sim.add_flow(
            FlowConfig::bulk("main", SimTime::from_secs(secs)),
            Box::new(FixedWindow::new(200.0)),
        );
        sim
    };
    // Impaired variant: Poisson cross traffic plus random loss and
    // reordering, so the bench — and the committed manifest's
    // `sim.cross_packets_emitted` / `sim.packets_dropped_random` /
    // `sim.packets_reordered` counters — exercises every per-packet
    // code path, not just clean FIFO forwarding.
    let build_impaired = |seed: u64| {
        let mut path = PathConfig::simple(20e6, SimTime::from_millis(20), 100_000);
        path.random_loss = 0.002;
        path.reorder = Some(ReorderCfg {
            probability: 0.005,
            extra_min: SimTime::from_millis(1),
            extra_max: SimTime::from_millis(6),
        });
        let mut sim = Simulation::new(path, SimTime::from_secs(secs), seed);
        sim.add_cross_traffic(CrossTrafficCfg::Poisson {
            mean_rate_bps: 2e6,
            pkt_size: 1200,
            start: SimTime::ZERO,
            stop: SimTime::from_secs(secs),
        });
        sim.add_flow(
            FlowConfig::bulk("main", SimTime::from_secs(secs)),
            Box::new(FixedWindow::new(200.0)),
        );
        sim
    };
    let packets = build(1).run().flow_stats[0].sent;
    assert!(packets > 0, "saturated flow must send packets");
    let impaired = build_impaired(1).run();
    let packets_impaired = impaired.flow_stats[0].sent;
    for counter in
        ["sim.cross_packets_emitted", "sim.packets_dropped_random", "sim.packets_reordered"]
    {
        let n = impaired.metrics.counters.get(counter).copied().unwrap_or(0);
        assert!(n > 0, "impaired scenario must drive {counter}, got 0");
    }

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(Scale::from_args().pick(5, 10));
    let stats = group
        .bench_function_timed("saturated_20mbps", |b| b.iter(|| black_box(build(1).run())))
        .expect("measured");
    let stats_impaired = group
        .bench_function_timed("impaired_20mbps", |b| b.iter(|| black_box(build_impaired(1).run())))
        .expect("measured");
    group.finish();
    (packets as f64 * best_per_sec(&stats), packets_impaired as f64 * best_per_sec(&stats_impaired))
}

fn bench_fit(c: &mut Criterion) -> f64 {
    let scale = Scale::from_args();
    let secs = scale.pick(3, 6) as u64;
    let n_traces = scale.pick(2, 4);
    let traces: Vec<FlowTrace> = (0..n_traces as u64)
        .map(|i| {
            let mut sim = Simulation::new(
                PathConfig::simple(8e6, SimTime::from_millis(20), 60_000),
                SimTime::from_secs(secs),
                100 + i,
            );
            sim.add_flow(
                FlowConfig::bulk("train", SimTime::from_secs(secs)),
                Box::new(FixedWindow::new(64.0)),
            );
            sim.run().traces.remove(0)
        })
        .collect();
    let cfg = || {
        IBoxMlConfig::builder()
            .hidden_sizes(vec![16, 16])
            .train(TrainConfig {
                epochs: scale.pick(2, 4),
                lr: 3e-3,
                tbptt: 32,
                clip: 5.0,
                loss_weight: 0.3,
                delay_weight: 1.0,
                ..Default::default()
            })
            .build()
    };

    let mut group = c.benchmark_group("iboxml_fit");
    group.sample_size(Scale::from_args().pick(2, 3));
    let stats = group
        .bench_function_timed("end_to_end", |b| {
            b.iter(|| black_box(IBoxMl::fit(black_box(&traces), cfg())))
        })
        .expect("measured");
    group.finish();
    stats.min_ns / 1e6
}

/// Read `--baseline <path>` from the args, if present.
fn baseline_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--baseline" {
            return args.next();
        }
    }
    None
}

/// Compare the fresh gauges against a committed manifest. Returns the
/// regressions found (empty = pass). Rates must not fall below 80% of the
/// baseline; wall times must not exceed 125%.
fn check_baseline(path: &str, fresh: &[(&str, f64)]) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read baseline {path}: {e}")],
    };
    let json: serde_json::JsonValue = match serde_json::parse_value(&text) {
        Ok(v) => v,
        Err(e) => return vec![format!("cannot parse baseline {path}: {e}")],
    };
    let gauges = json.get("metrics").and_then(|m| m.get("gauges"));
    let mut failures = Vec::new();
    for (name, new) in fresh {
        let Some(old) = gauges.and_then(|g| g.get(name)).and_then(|v| v.as_f64()) else {
            continue; // gauge not in the committed manifest yet
        };
        let is_wall_time = name.ends_with("_ms");
        let regressed = if is_wall_time { *new > old * 1.25 } else { *new < old * 0.80 };
        if regressed {
            failures.push(format!("{name}: {new:.1} vs baseline {old:.1} (>20% regression)"));
        }
    }
    failures
}

fn main() {
    let bench = ibox_bench::BenchRun::start("perf");
    let mut criterion = Criterion::default();

    let (naive_sps, ws_sps) = bench_train_steps(&mut criterion);
    let speedup = ws_sps / naive_sps.max(1e-9);
    let (sim_pps, sim_pps_impaired) = bench_sim(&mut criterion);
    let fit_ms = bench_fit(&mut criterion);

    let registry = ibox_obs::global();
    registry.gauge("perf.lstm_train_steps_per_sec").set(ws_sps);
    registry.gauge("perf.lstm_train_steps_per_sec_naive").set(naive_sps);
    registry.gauge("perf.lstm_speedup_x").set(speedup);
    registry.gauge("perf.sim_packets_per_sec").set(sim_pps);
    registry.gauge("perf.sim_packets_per_sec_impaired").set(sim_pps_impaired);
    registry.gauge("perf.fit_wall_ms").set(fit_ms);

    print!(
        "{}",
        render_table(
            "Steady-state throughput (workspace kernels vs naive reference)",
            &["metric", "value"],
            &[
                vec!["lstm train steps/s (workspace)".into(), cell(ws_sps, 0)],
                vec!["lstm train steps/s (naive)".into(), cell(naive_sps, 0)],
                vec!["speedup".into(), format!("{speedup:.2}x")],
                vec!["sim packets/s".into(), cell(sim_pps, 0)],
                vec!["sim packets/s (cross+loss+reorder)".into(), cell(sim_pps_impaired, 0)],
                vec!["IBoxMl::fit wall ms".into(), cell(fit_ms, 1)],
            ],
        )
    );

    // Read the committed baseline BEFORE finish() overwrites the file.
    let baseline_failures = baseline_from_args()
        .map(|p| {
            check_baseline(
                &p,
                &[
                    ("perf.lstm_train_steps_per_sec", ws_sps),
                    ("perf.sim_packets_per_sec", sim_pps),
                    ("perf.sim_packets_per_sec_impaired", sim_pps_impaired),
                ],
            )
        })
        .unwrap_or_default();

    bench.finish();

    assert!(
        speedup >= 1.5,
        "workspace kernels must be >= 1.5x the naive reference, got {speedup:.2}x"
    );
    if !baseline_failures.is_empty() {
        for f in &baseline_failures {
            eprintln!("perf regression: {f}");
        }
        std::process::exit(1);
    }
}
