//! Loopback throughput and load-shedding behaviour of the `ibox-serve`
//! daemon.
//!
//! Two phases against an in-process server on an ephemeral port:
//!
//! 1. **Throughput** — keep-alive clients hammer `GET /healthz` (the
//!    transport floor) and `POST /replay` of a small registered model
//!    (a real inference round-trip), recording requests/second as
//!    `serve.bench.healthz_rps` / `serve.bench.replay_rps` gauges.
//! 2. **Overload** — a second server with one worker and a one-slot
//!    accept queue takes a concurrent barrage; the shed rate (503s or
//!    reset connections over total attempts) lands in
//!    `serve.bench.shed_rate`, asserting the daemon degrades by
//!    rejecting rather than queueing without bound.
//!
//! Results (plus the server's own `serve.*` counters) are written to
//! `BENCH_serve.json`.
//!
//! Run: `cargo run -p ibox-bench --release --bin serve [--quick]`

use std::time::{Duration, Instant};

use ibox_bench::{cell, render_table, BenchRun, Scale};
use ibox_serve::{HttpClient, ServeConfig, Server};

/// Start a daemon on an ephemeral loopback port with a fresh model dir.
fn start(tag: &str, configure: impl FnOnce(&mut ServeConfig)) -> Server {
    let dir = std::env::temp_dir().join(format!("ibox-bench-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServeConfig::new("127.0.0.1:0", &dir);
    configure(&mut config);
    Server::bind(config).expect("bind bench server")
}

/// Register a small model synchronously and return its id.
fn fit_small_model(addr: &str) -> String {
    let body = br#"{"model": "IBoxNet", "wait": true,
        "synth": {"profile": "ethernet", "protocol": "cubic", "seed": 7, "duration_s": 3}}"#;
    let mut c = HttpClient::connect(addr, Duration::from_secs(60)).expect("connect");
    let (status, resp) = c.request("POST", "/fit", Some(body)).expect("fit");
    let text = String::from_utf8(resp).expect("fit response utf-8");
    assert_eq!(status, 200, "{text}");
    let v = serde_json::parse_value(&text).expect("fit response json");
    match v.get("model") {
        Some(serde::Value::Str(id)) => id.clone(),
        other => panic!("fit answered without a model id: {other:?}"),
    }
}

/// Hammer one endpoint from `clients` keep-alive connections for
/// `per_client` requests each; returns aggregate requests/second.
fn measure_rps(
    addr: &str,
    clients: usize,
    per_client: usize,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(move || {
                    let mut c =
                        HttpClient::connect(addr, Duration::from_secs(60)).expect("connect");
                    for _ in 0..per_client {
                        let (status, _) = match c.request(method, path, body) {
                            Ok(r) => r,
                            Err(_) => {
                                // The server's keep-alive request cap
                                // closed the connection; dial again.
                                c = HttpClient::connect(addr, Duration::from_secs(60))
                                    .expect("reconnect");
                                c.request(method, path, body).expect("request after reconnect")
                            }
                        };
                        assert_eq!(status, 200, "{method} {path} failed mid-benchmark");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("bench client");
        }
    });
    (clients * per_client) as f64 / t0.elapsed().as_secs_f64()
}

/// Barrage a capacity-1 server; returns (attempts, served, rejected).
/// "Rejected" counts both clean 503s and connections the shed path
/// closed before the client finished its send.
fn measure_shedding(
    addr: &str,
    waves: usize,
    per_wave: usize,
    body: &[u8],
) -> (usize, usize, usize) {
    let mut served = 0usize;
    let mut rejected = 0usize;
    for _ in 0..waves {
        let outcomes: Vec<Result<u16, String>> = std::thread::scope(|s| {
            (0..per_wave)
                .map(|_| {
                    s.spawn(move || {
                        let mut c = HttpClient::connect(addr, Duration::from_secs(60))?;
                        c.request("POST", "/replay", Some(body)).map(|(status, _)| status)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("barrage client"))
                .collect()
        });
        for o in outcomes {
            match o {
                Ok(200) => served += 1,
                Ok(503) | Err(_) => rejected += 1,
                Ok(other) => panic!("unexpected status {other} under overload"),
            }
        }
    }
    (waves * per_wave, served, rejected)
}

fn main() {
    let run = BenchRun::start("serve");
    let scale = Scale::from_args();
    let reg = ibox_obs::global();

    // -------------------------------------------------- throughput phase
    let server = start("throughput", |c| c.jobs = 4);
    let addr = server.addr().to_string();
    let model = fit_small_model(&addr);
    let replay =
        format!(r#"{{"model": "{model}", "protocol": "cubic", "duration_s": 1, "seed": 3}}"#)
            .into_bytes();

    let clients = 4;
    let healthz_rps = measure_rps(&addr, clients, scale.pick(200, 2000), "GET", "/healthz", None);
    let replay_rps =
        measure_rps(&addr, clients, scale.pick(20, 200), "POST", "/replay", Some(&replay));
    reg.gauge("serve.bench.healthz_rps").set(healthz_rps);
    reg.gauge("serve.bench.replay_rps").set(replay_rps);
    server.handle().shutdown();
    server.join();

    // ----------------------------------------------------- overload phase
    let server = start("overload", |c| {
        c.jobs = 1;
        c.max_inflight = 1;
    });
    let addr = server.addr().to_string();
    let model = fit_small_model(&addr);
    let replay =
        format!(r#"{{"model": "{model}", "protocol": "cubic", "duration_s": 2, "seed": 3}}"#)
            .into_bytes();
    let (attempts, served, rejected) = measure_shedding(&addr, scale.pick(2, 6), 8, &replay);
    let shed_rate = rejected as f64 / attempts as f64;
    reg.gauge("serve.bench.shed_attempts").set(attempts as f64);
    reg.gauge("serve.bench.shed_served").set(served as f64);
    reg.gauge("serve.bench.shed_rate").set(shed_rate);
    server.handle().shutdown();
    server.join();

    assert!(served >= 1, "overloaded server must still serve someone");
    assert!(rejected >= 1, "a capacity-2 server under an 8-wide barrage must shed");

    println!(
        "{}",
        render_table(
            "ibox-serve loopback benchmark",
            &["measurement", "value"],
            &[
                vec!["healthz rps (4 clients)".into(), cell(healthz_rps, 0)],
                vec!["replay rps (4 clients)".into(), cell(replay_rps, 1)],
                vec!["overload attempts".into(), format!("{attempts}")],
                vec!["overload served".into(), format!("{served}")],
                vec!["overload shed rate".into(), cell(shed_rate, 3)],
            ],
        )
    );
    run.finish();
}
