//! The §6 open-challenge extensions, measured.
//!
//! 1. **Limits of model validity** — the validity region fitted on RTC
//!    training traces flags the high-rate CBR workload (the Fig. 7 test)
//!    as out of support, and passes a fresh RTC run.
//! 2. **Test for realism** — discriminator accuracy between ground-truth
//!    traces and (a) iBoxNet replays of the same protocol, (b) a crude
//!    fixed-rate stand-in. Realism = the discriminator's failure.
//! 3. **Adaptive cross traffic** — on the instance-test scenario (whose
//!    cross traffic *is* one adaptive Cubic flow), compare the replayed
//!    (non-adaptive) and adaptive-Cubic cross models on rate suppression.
//!
//! Run: `cargo run -p ibox-bench --release --bin extensions [--quick]`

use ibox::adaptive::AdaptiveCross;
use ibox::realism::{realism_of_model_jobs, realism_test_jobs};
use ibox::validity::ValidityRegion;
use ibox::{FitCache, IBoxNet, ModelKind};
use ibox_bench::{cell, render_table, Scale};
use ibox_cc::Cubic;
use ibox_sim::{FixedRate, PathConfig, PathEmulator, SimTime};
use ibox_testbed::instance::{run_instance, InstanceScenario, INSTANCE_DURATION};
use ibox_testbed::rtc::{bias_test_trace, bias_training_trace};
use ibox_trace::series::send_rate_series;
use ibox_trace::FlowTrace;

fn main() {
    let bench = ibox_bench::BenchRun::start("extensions");
    let scale = Scale::from_args();
    let jobs = ibox_bench::jobs_from_args();

    // --- 1. Validity regions.
    ibox_obs::info!("extensions: validity region…");
    let dur = SimTime::from_secs(scale.pick(8, 20) as u64);
    let train: Vec<FlowTrace> =
        ibox_runner::run_scoped(3, jobs, |i| bias_training_trace(0.3, dur, i as u64));
    let region = ValidityRegion::fit_jobs(&train, jobs);
    let fresh_rtc = bias_training_trace(0.3, dur, 99);
    let cbr = bias_test_trace(0.3, dur, 99);
    let rows = vec![
        vec![
            "fresh RTC run".to_string(),
            cell(region.check(&fresh_rtc).coverage, 3),
            region.check(&fresh_rtc).is_valid(0.9).to_string(),
        ],
        vec![
            "8 Mbps CBR".to_string(),
            cell(region.check(&cbr).coverage, 3),
            region.check(&cbr).is_valid(0.9).to_string(),
        ],
    ];
    print!(
        "{}",
        render_table(
            "Extension 1 — limits of model validity (RTC-trained region)",
            &["candidate", "coverage", "valid@0.9"],
            &rows,
        )
    );

    // --- 2. Realism discriminator.
    ibox_obs::info!("extensions: realism discriminator…");
    let n = scale.pick(3, 8);
    let gt: Vec<FlowTrace> = ibox_runner::run_scoped(n, jobs, |i| {
        PathEmulator::from_spec(
            ibox_sim::PathSpec::single(PathConfig::simple(7e6, SimTime::from_millis(25), 100_000)),
            dur,
        )
        .run_sender(Box::new(Cubic::new()), "m", i as u64)
        .traces
        .into_iter()
        .next()
        .expect("one recorded flow")
        .normalized()
    });
    let crude: Vec<FlowTrace> = ibox_runner::run_scoped(n, jobs, |i| {
        PathEmulator::from_spec(
            ibox_sim::PathSpec::single(PathConfig::simple(7e6, SimTime::from_millis(25), 100_000)),
            dur,
        )
        .run_sender(Box::new(FixedRate::new(5e6)), "m", 70 + i as u64)
        .traces
        .into_iter()
        .next()
        .expect("one recorded flow")
        .normalized()
    });
    let cache = FitCache::in_memory();
    let r_net = realism_of_model_jobs(&ModelKind::IBoxNet, &gt, "cubic", dur, 40, jobs, &cache);
    let r_crude = realism_test_jobs(&gt, &crude, jobs);
    let rows = vec![
        vec![
            "iBoxNet replay".to_string(),
            cell(r_net.discriminator_accuracy, 3),
            cell(r_net.realism_score, 3),
        ],
        vec![
            "crude CBR stand-in".to_string(),
            cell(r_crude.discriminator_accuracy, 3),
            cell(r_crude.realism_score, 3),
        ],
    ];
    print!(
        "{}",
        render_table(
            "Extension 2 — realism: can a discriminator tell sim from real?",
            &["simulator", "disc_accuracy", "realism(1=best)"],
            &rows,
        )
    );

    // --- 3. Adaptive cross traffic on the instance scenario.
    ibox_obs::info!("extensions: adaptive cross traffic…");
    let scenario = InstanceScenario::new(1); // CT in [20, 30) s
    let fit_trace = run_instance(&scenario, "cubic", 3);
    let model = IBoxNet::fit(&fit_trace);
    let replay_sim = model.simulate("cubic", INSTANCE_DURATION, 9);
    let adaptive = AdaptiveCross::fit(&model);
    let mut rows = Vec::new();
    let dip = |t: &FlowTrace| {
        let rates = send_rate_series(t, 1.0);
        let mean = |lo: f64, hi: f64| {
            let v: Vec<f64> = rates
                .t
                .iter()
                .zip(&rates.v)
                .filter(|(ts, _)| **ts >= lo && **ts < hi)
                .map(|(_, x)| *x)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        mean(22.0, 29.0) / mean(5.0, 15.0).max(1.0)
    };
    rows.push(vec!["ground truth".to_string(), cell(dip(&fit_trace), 3)]);
    rows.push(vec!["iBoxNet (replay CT)".to_string(), cell(dip(&replay_sim), 3)]);
    if let Some(a) = adaptive {
        let sim = a.simulate(&model, "cubic", INSTANCE_DURATION, 9);
        rows.push(vec![format!("iBoxNet (adaptive, {} cubic)", a.n_flows), cell(dip(&sim), 3)]);
    }
    print!(
        "{}",
        render_table(
            "Extension 3 — adaptive CT: main-flow rate inside/outside the CT window",
            &["model", "rate_ratio (lower = stronger suppression)"],
            &rows,
        )
    );
    bench.finish();
}
