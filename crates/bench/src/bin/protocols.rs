//! Cross-protocol generalization: one fitted model, many counterfactuals.
//!
//! The ensemble test's deeper claim is that a model fitted on *one*
//! protocol's traces predicts *any* sender — "the network model is learnt
//! using end-to-end traces of A and then used to predict behaviour if B
//! were run instead" (§2). This binary fixes A = Cubic and sweeps B over
//! every implemented protocol family: loss-based (Reno), delay-based
//! (Vegas), model-based (BBR-lite), and an application control loop
//! (RTC) — a wider net than the paper's single Cubic→Vegas pair.
//!
//! Run: `cargo run -p ibox-bench --release --bin protocols [--quick]`

use ibox::abtest::{ensemble_test_jobs, ModelKind};
use ibox_bench::{cell, render_table, Scale};
use ibox_sim::SimTime;
use ibox_stats::wasserstein_1d;
use ibox_testbed::pantheon::generate_paired_datasets_jobs;
use ibox_testbed::Profile;

fn main() {
    let bench = ibox_bench::BenchRun::start("protocols");
    let scale = Scale::from_args();
    let jobs = ibox_bench::jobs_from_args();
    let n = scale.pick(4, 15);
    let duration = match scale {
        Scale::Quick => SimTime::from_secs(8),
        Scale::Full => SimTime::from_secs(20),
    };
    let treatments = ["vegas", "reno", "bbr", "rtc"];

    let mut rows = Vec::new();
    for b in treatments {
        ibox_obs::info!("protocols: cubic -> {b} ({n} paired runs)…");
        let ds = generate_paired_datasets_jobs(
            Profile::IndiaCellular,
            &["cubic", b],
            n,
            duration,
            21_000,
            jobs,
        );
        let r = ensemble_test_jobs(&ds[0], &ds[1], ModelKind::IBoxNet, duration, 5, jobs);
        // KS on p95 delay + the interpretable W1 distances.
        let gt_d: Vec<f64> = r.gt_b.iter().map(|m| m.p95_delay_ms).collect();
        let sim_d: Vec<f64> = r.sim_b.iter().map(|m| m.p95_delay_ms).collect();
        let gt_r: Vec<f64> = r.gt_b.iter().map(|m| m.avg_rate_mbps).collect();
        let sim_r: Vec<f64> = r.sim_b.iter().map(|m| m.avg_rate_mbps).collect();
        rows.push(vec![
            format!("cubic->{b}"),
            cell(r.ks_delay.b.statistic, 3),
            cell(r.ks_delay.b.p_value, 3),
            cell(r.ks_rate.b.statistic, 3),
            cell(r.ks_rate.b.p_value, 3),
            cell(wasserstein_1d(&gt_d, &sim_d), 1),
            cell(wasserstein_1d(&gt_r, &sim_r), 2),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Cross-protocol counterfactuals: iBoxNet fitted on Cubic, treatment swept",
            &["pair", "D(d95)", "p(d95)", "D(rate)", "p(rate)", "W1(d95) ms", "W1(rate) Mbps",],
            &rows,
        )
    );
    println!("(W1 = 1-D Wasserstein distance between GT and model metric distributions)");
    bench.finish();
}
