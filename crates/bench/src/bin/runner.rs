//! Batch-runner scaling check — determinism and wall-time speedup.
//!
//! Builds the fig2-shaped ensemble workload as a typed [`BatchSpec`]
//! (fit + replay per run, every model kind represented), executes it
//! twice — `--jobs 1` (serial) and `--jobs 4` — and
//!
//! 1. asserts the two result JSONs are **byte-identical** (the runner's
//!    determinism contract), and
//! 2. reports the wall-time speedup, recorded as gauges in
//!    `BENCH_runner.json`.
//!
//! Run: `cargo run -p ibox-bench --release --bin runner [--quick]`

use ibox::{run_batch_jobs, BatchSpec, ModelKind, RunSpec};
use ibox_bench::{cell, render_table, Scale};
use ibox_testbed::Profile;

fn main() {
    let bench = ibox_bench::BenchRun::start("runner");
    let scale = Scale::from_args();
    let per_profile = scale.pick(1, 4);
    let duration = scale.pick(6, 20) as f64;

    // The ensemble workload: every profile × every model kind, fitting on
    // a synthetic Cubic run and replaying Vegas — the fig2/fig3 pipeline
    // expressed as data.
    let mut runs = Vec::new();
    for profile in Profile::all() {
        for model in ModelKind::all() {
            for r in 0..per_profile {
                runs.push(
                    RunSpec::builder()
                        .id(format!("{}/{}/{r}", profile.name(), model.name()))
                        .synth(profile.name(), "cubic", 3_000 + r as u64)
                        .protocol("vegas")
                        .duration_s(duration)
                        .seed(19 + r as u64)
                        .model(model.clone())
                        .build()
                        .expect("spec is valid"),
                );
            }
        }
    }
    let batch = BatchSpec::builder().runs(runs).build().expect("batch is non-empty");
    ibox_obs::info!("runner: {} specs, {duration}s replays", batch.runs.len());

    let timed = |jobs: usize| {
        let t0 = std::time::Instant::now();
        let result = run_batch_jobs(&batch, jobs).expect("batch executes");
        (result.to_json(), t0.elapsed().as_secs_f64())
    };

    ibox_obs::info!("runner: executing at --jobs 1 (serial baseline)…");
    let (serial_json, serial_s) = timed(1);
    ibox_obs::info!("runner: executing at --jobs 4…");
    let (parallel_json, parallel_s) = timed(4);

    assert_eq!(
        serial_json, parallel_json,
        "runner determinism contract violated: --jobs 4 diverged from --jobs 1"
    );
    let speedup = serial_s / parallel_s.max(1e-9);

    let registry = ibox_obs::global();
    registry.gauge("runner.wall_s_jobs1").set(serial_s);
    registry.gauge("runner.wall_s_jobs4").set(parallel_s);
    registry.gauge("runner.speedup_x").set(speedup);

    let cores = ibox::suggested_jobs();
    if cores < 2 {
        ibox_obs::warn!(
            "runner: only {cores} core available — the CPU-bound speedup above cannot exceed 1×"
        );
    }

    // Scheduling check, independent of the host's core count: sleep-bound
    // jobs overlap even on one core, so anything below ~2× here means the
    // pool is serializing work behind a lock.
    let sched = |jobs: usize| {
        let t0 = std::time::Instant::now();
        ibox_runner::run_indexed(8, jobs, |_| {
            std::thread::sleep(std::time::Duration::from_millis(100));
        });
        t0.elapsed().as_secs_f64()
    };
    let sched_1 = sched(1);
    let sched_4 = sched(4);
    let sched_speedup = sched_1 / sched_4.max(1e-9);
    registry.gauge("runner.sched_speedup_x").set(sched_speedup);
    assert!(
        sched_speedup >= 2.0,
        "pool failed to overlap sleep-bound jobs ({sched_speedup:.2}x) — workers are serialized"
    );

    print!(
        "{}",
        render_table(
            &format!("Batch runner — identical results, scaled wall time ({cores} cores)"),
            &["workload", "jobs", "wall_s", "speedup", "identical"],
            &[
                vec!["ensemble".into(), "1".into(), cell(serial_s, 2), cell(1.0, 2), "—".into()],
                vec![
                    "ensemble".into(),
                    "4".into(),
                    cell(parallel_s, 2),
                    cell(speedup, 2),
                    "yes".into(),
                ],
                vec![
                    "sleep 8x100ms".into(),
                    "1".into(),
                    cell(sched_1, 2),
                    cell(1.0, 2),
                    "—".into()
                ],
                vec![
                    "sleep 8x100ms".into(),
                    "4".into(),
                    cell(sched_4, 2),
                    cell(sched_speedup, 2),
                    "—".into(),
                ],
            ],
        )
    );
    bench.finish();
}
