//! Fidelity guardrails: the flow-level fast path must actually be fast
//! *and* faithful.
//!
//! Fits an iBoxNet model on a synthetic testbed trace (cross traffic
//! included, so the fitted path exercises the cross-replay machinery at
//! every fidelity), then replays the same `(protocol, duration, seed)`
//! at each [`ibox::Fidelity`] level through the public
//! [`ibox::FittedModel::simulate_with`] entry point — exactly what
//! `ibox replay --fidelity` and `POST /replay` run.
//!
//! Two guarantees are asserted in-binary (a failed run exits nonzero):
//!
//! 1. **Speed** — flow-mode replay is at least 10x faster than the
//!    packet engine (wall clock, fastest sample of each).
//! 2. **Accuracy** — the two-sample Kolmogorov–Smirnov distance between
//!    the flow-mode and packet-mode one-way-delay distributions is at
//!    most 0.1. Hybrid numbers are reported alongside (hybrid trades
//!    some of the speedup for packet-exact congestion episodes, so its
//!    KS is expected to be no worse than pure flow).
//!
//! Results land as `flow.*` gauges in `BENCH_flow.json`. With
//! `--baseline <path>` the previously committed manifest is read before
//! the new one is written and the process exits nonzero if any fidelity
//! speedup regressed by more than 20% (used by `scripts/check.sh
//! --perf`). Speedups — not raw pps — are gated because they are the
//! tentpole's actual promise and stay comparable between `--quick` and
//! full runs (absolute rates shift with replay duration as fixed
//! per-episode and per-tick overhead amortizes differently).
//!
//! Run: `cargo run -p ibox-bench --release --bin flow [--quick]
//! [--baseline BENCH_flow.json]`

use std::hint::black_box;

use criterion::Criterion;
use ibox::{fit_model, Fidelity, FittedModel, ModelKind, ReplayOpts};
use ibox_bench::{cell, render_table, Scale};
use ibox_sim::SimTime;
use ibox_stats::ks_two_sample;
use ibox_testbed::pantheon::run_protocol;
use ibox_testbed::Profile;
use ibox_trace::FlowTrace;

/// Replay scenario: one protocol over the fitted model, long enough that
/// the packet engine's event loop dominates its wall time.
const PROTOCOL: &str = "cubic";
const REPLAY_SEED: u64 = 7;
/// Testbed draw for the training path. Seed 1 samples the fastest
/// Ethernet instance (~80 Mbps, ~8% Poisson cross) — the most packets
/// per simulated second, which is exactly where a flow-level fast path
/// has to prove itself.
const TRAIN_SEED: u64 = 1;

/// One-way delays of the delivered packets, in milliseconds — the
/// distribution the KS accuracy gate compares across engines.
fn delays_ms(trace: &FlowTrace) -> Vec<f64> {
    trace.delivered().map(|r| (r.recv_ns.expect("delivered") - r.send_ns) as f64 / 1e6).collect()
}

struct Arm {
    fidelity: Fidelity,
    /// Fastest replay wall time, seconds.
    wall_s: f64,
    /// Replayed packets per wall-clock second.
    pps: f64,
    /// KS distance of the delay distribution vs the packet engine.
    ks: f64,
    packets: usize,
}

fn bench_replays(c: &mut Criterion, model: &FittedModel, duration: SimTime) -> Vec<Arm> {
    let replay = |fidelity: Fidelity| {
        let opts = ReplayOpts { fidelity, ..Default::default() };
        model.simulate_with(PROTOCOL, duration, REPLAY_SEED, opts)
    };
    let packet_delays = delays_ms(&replay(Fidelity::Packet));
    assert!(packet_delays.len() > 500, "reference replay too small to compare distributions");

    let mut group = c.benchmark_group("fidelity_replay");
    group.sample_size(Scale::from_args().pick(3, 5));
    let mut arms = Vec::new();
    for fidelity in Fidelity::ALL {
        let trace = replay(fidelity);
        let stats = group
            .bench_function_timed(fidelity.as_str(), |b| b.iter(|| black_box(replay(fidelity))))
            .expect("measured");
        let wall_s = stats.min_ns / 1e9;
        arms.push(Arm {
            fidelity,
            wall_s,
            pps: trace.len() as f64 / wall_s.max(1e-12),
            ks: ks_two_sample(&packet_delays, &delays_ms(&trace)).statistic,
            packets: trace.len(),
        });
    }
    group.finish();
    arms
}

/// Read `--baseline <path>` from the args, if present.
fn baseline_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--baseline" {
            return args.next();
        }
    }
    None
}

/// Compare the fresh speedup gauges against a committed manifest.
/// Returns the regressions found (empty = pass): a fidelity speedup must
/// not fall below 80% of the baseline. KS distances are deliberately not
/// gated here — the in-binary `<= 0.1` assert is their (absolute) gate.
fn check_baseline(path: &str, fresh: &[(&str, f64)]) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read baseline {path}: {e}")],
    };
    let json: serde_json::JsonValue = match serde_json::parse_value(&text) {
        Ok(v) => v,
        Err(e) => return vec![format!("cannot parse baseline {path}: {e}")],
    };
    let gauges = json.get("metrics").and_then(|m| m.get("gauges"));
    let mut failures = Vec::new();
    for (name, new) in fresh {
        let Some(old) = gauges.and_then(|g| g.get(name)).and_then(|v| v.as_f64()) else {
            continue; // gauge not in the committed manifest yet
        };
        if *new < old * 0.80 {
            failures.push(format!("{name}: {new:.1} vs baseline {old:.1} (>20% regression)"));
        }
    }
    failures
}

fn main() {
    let bench = ibox_bench::BenchRun::start("flow");
    let mut criterion = Criterion::default();
    let scale = Scale::from_args();

    // Train on a cross-trafficked testbed path so the fitted model carries
    // a cross-traffic series into every replay arm.
    let train_duration = SimTime::from_secs(scale.pick(10, 30) as u64);
    let inst = Profile::Ethernet.sample(TRAIN_SEED, train_duration);
    let train = run_protocol(&inst, PROTOCOL, train_duration, TRAIN_SEED);
    let model = fit_model(&ModelKind::IBoxNet, &train);

    let duration = SimTime::from_secs(scale.pick(10, 30) as u64);
    let arms = bench_replays(&mut criterion, &model, duration);
    let packet = &arms[0];
    assert_eq!(packet.fidelity, Fidelity::Packet);

    let registry = ibox_obs::global();
    let mut rows = Vec::new();
    let mut gated: Vec<(String, f64)> = Vec::new();
    for arm in &arms {
        let speedup = packet.wall_s / arm.wall_s.max(1e-12);
        registry.gauge(&format!("flow.replay_pps_{}", arm.fidelity)).set(arm.pps);
        registry.gauge(&format!("flow.speedup_{}_x", arm.fidelity)).set(speedup);
        registry.gauge(&format!("flow.ks_{}", arm.fidelity)).set(arm.ks);
        if arm.fidelity != Fidelity::Packet {
            gated.push((format!("flow.speedup_{}_x", arm.fidelity), speedup));
        }
        rows.push(vec![
            arm.fidelity.to_string(),
            cell(arm.packets as f64, 0),
            cell(arm.pps, 0),
            format!("{speedup:.1}x"),
            format!("{:.4}", arm.ks),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Replay fidelity: speed vs accuracy (KS on delay distributions)",
            &["fidelity", "packets", "replay pps", "speedup", "KS vs packet"],
            &rows,
        )
    );

    // Read the committed baseline BEFORE finish() overwrites the file.
    let fresh: Vec<(&str, f64)> = gated.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let baseline_failures =
        baseline_from_args().map(|p| check_baseline(&p, &fresh)).unwrap_or_default();

    bench.finish();

    // The tentpole guarantees, asserted on every run.
    let flow = &arms[1];
    let hybrid = &arms[2];
    let flow_speedup = packet.wall_s / flow.wall_s.max(1e-12);
    assert!(
        flow_speedup >= 10.0,
        "flow-mode replay must be >= 10x the packet engine, got {flow_speedup:.1}x"
    );
    assert!(flow.ks <= 0.1, "flow-mode delay KS must be <= 0.1, got {:.4}", flow.ks);
    assert!(hybrid.ks <= 0.1, "hybrid delay KS must be <= 0.1, got {:.4}", hybrid.ks);

    if !baseline_failures.is_empty() {
        for f in &baseline_failures {
            eprintln!("flow regression: {f}");
        }
        std::process::exit(1);
    }
}
