//! Fig. 8 — Behaviour discovery on Pantheon-like traces (§5.1).
//!
//! (a) SAX-encode the inter-packet arrival differences of ground-truth
//! and iBoxNet traces and "diff" the motif tables: the symbol `'a'`
//! (negative inter-arrival, i.e. reordering) appears only in ground truth.
//! (b) After augmenting iBoxNet with the learned reordering model, the
//! frequencies of `'a'` patterns (length 1 and 2) approach ground truth.

use ibox::meld::discovery::discover;
use ibox::meld::reorder::{augment_with_reordering, ReorderLstm};
use ibox::IBoxNet;
use ibox_bench::{cell, render_table, Scale};
use ibox_sim::SimTime;
use ibox_testbed::pantheon::generate_paired_datasets_jobs;
use ibox_testbed::Profile;

fn main() {
    let bench = ibox_bench::BenchRun::start("fig8");
    let scale = Scale::from_args();
    let jobs = ibox_bench::jobs_from_args();
    let n_train = scale.pick(3, 16);
    let n_test = scale.pick(3, 12);
    let duration = match scale {
        Scale::Quick => SimTime::from_secs(10),
        Scale::Full => SimTime::from_secs(30),
    };
    ibox_obs::info!("fig8: generating {} paired cubic/vegas cellular runs…", n_train + n_test);
    let ds = generate_paired_datasets_jobs(
        Profile::IndiaCellular,
        &["cubic", "vegas"],
        n_train + n_test,
        duration,
        13_000,
        jobs,
    );
    let (cubic_train, _) = ds[0].split(n_train as f64 / (n_train + n_test) as f64);
    let (_, vegas_test) = ds[1].split(n_train as f64 / (n_train + n_test) as f64);

    // iBoxNet simulations of the test set (reordering-free by construction).
    ibox_obs::info!("fig8: simulating iBoxNet traces…");
    let net_traces: Vec<_> = ibox_runner::run_scoped(vegas_test.traces.len(), jobs, |i| {
        IBoxNet::fit(&vegas_test.traces[i]).simulate("vegas", duration, 400 + i as u64)
    });

    // (a) The diff: patterns in GT absent from iBoxNet.
    let report = discover(&vegas_test.traces, &net_traces);
    println!("## Fig. 8a — patterns in ground truth but MISSING from iBoxNet");
    if report.missing_unigrams.is_empty() && report.missing_bigrams.is_empty() {
        println!("(none)");
    }
    for (p, f) in &report.missing_unigrams {
        println!("  length-1 pattern {p:?}  gt-frequency {:.2}%", f * 100.0);
    }
    for (p, f) in &report.missing_bigrams {
        println!("  length-2 pattern {p:?}  gt-frequency {:.2}%", f * 100.0);
    }
    println!();

    // (b) Augment with the learned LSTM reorder model and re-compare.
    ibox_obs::info!("fig8: training the LSTM reorder model and augmenting…");
    let lstm = ReorderLstm::fit(&cubic_train.traces, 16, scale.pick(3, 8), 3);
    let augmented: Vec<_> = ibox_runner::run_scoped(net_traces.len(), jobs, |i| {
        augment_with_reordering(&net_traces[i], &lstm, 700 + i as u64)
    });
    let report_aug = discover(&vegas_test.traces, &augmented);

    let mut rows = Vec::new();
    for (pattern, gt_f, _) in report.comparison_rows(6) {
        let aug_f = if pattern.len() == 1 {
            report_aug.sim_unigrams.frequency(&pattern)
        } else {
            report_aug.sim_bigrams.frequency(&pattern)
        };
        let net_f = if pattern.len() == 1 {
            report.sim_unigrams.frequency(&pattern)
        } else {
            report.sim_bigrams.frequency(&pattern)
        };
        rows.push(vec![
            pattern,
            format!("{:.2}%", gt_f * 100.0),
            format!("{:.2}%", net_f * 100.0),
            format!("{:.2}%", aug_f * 100.0),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Fig. 8b — pattern frequencies: ground truth vs iBoxNet vs iBoxNet+ML",
            &["pattern", "ground truth", "iboxnet", "iboxnet+ml"],
            &rows,
        )
    );

    // Residual diff after augmentation.
    println!("## Fig. 8b — patterns still missing after augmentation");
    if report_aug.missing_unigrams.is_empty() {
        println!("  length-1: (none — 'a' restored)");
    } else {
        for (p, f) in &report_aug.missing_unigrams {
            println!("  length-1 pattern {p:?} gt-frequency {}", cell(f * 100.0, 2));
        }
    }
    bench.finish();
}
