//! Composed-path guardrails: chaining stages must cost, at worst, a
//! bounded constant factor per added hop.
//!
//! Fits an iBoxNet model on a synthetic testbed trace, then replays the
//! same `(protocol, duration, seed)` through composed [`PathSpec`]
//! chains of 1, 2, and 3 stages — the bottleneck stage plus faster
//! transit hops in front of it — at both packet and flow fidelity,
//! through the public [`ibox::FittedModel::simulate_with`] entry point
//! (exactly what `ibox replay --path` and `POST /replay` run).
//!
//! One guarantee is asserted in-binary (a failed run exits nonzero):
//! each added stage slows replay down by at most **2.5x** (wall clock,
//! fastest sample, per fidelity). Stages are independent queues, so the
//! expected cost is roughly linear in hop count; 2.5x leaves room for
//! cache effects without letting the chain loop go quadratic.
//!
//! Results land as `path.*` gauges in `BENCH_path.json`: replayed
//! packets per wall-clock second per `(fidelity, stage count)`, plus the
//! per-added-stage slowdown factors. With `--baseline <path>` the
//! previously committed manifest is read before the new one is written
//! and the process exits nonzero if any slowdown factor grew by more
//! than 25% (slowdowns — not raw pps — are gated because they stay
//! comparable between `--quick` and full runs).
//!
//! Run: `cargo run -p ibox-bench --release --bin path [--quick]
//! [--baseline BENCH_path.json]`

use std::hint::black_box;

use criterion::Criterion;
use ibox::{fit_model, Fidelity, FittedModel, ModelKind, ReplayOpts};
use ibox_bench::{cell, render_table, Scale};
use ibox_sim::{PathConfig, PathSpec, PathStage, SimTime};
use ibox_testbed::pantheon::run_protocol;
use ibox_testbed::Profile;

const PROTOCOL: &str = "cubic";
const REPLAY_SEED: u64 = 7;
const TRAIN_SEED: u64 = 1;
/// Maximum chain length benchmarked (1..=MAX_STAGES).
const MAX_STAGES: usize = 3;
/// Per-added-stage wall-clock budget, asserted on every run.
const MAX_SLOWDOWN_PER_STAGE: f64 = 2.5;

/// A k-stage constant-rate FIFO chain: the 12 Mbps bottleneck first,
/// then progressively faster transit hops. Constant rates + FIFO keep
/// the chain on the fluid fast path at flow fidelity, so both engines
/// measure the same scenario. The bottleneck is identical at every k,
/// so delivered-packet counts stay comparable across stage counts.
fn chain(stages: usize) -> PathSpec {
    let hop = |rate_bps: f64, delay_ms: u64, buffer: u64| {
        PathStage::new(PathConfig::simple(rate_bps, SimTime::from_millis(delay_ms), buffer))
    };
    let mut v = vec![hop(12e6, 10, 150_000)];
    if stages >= 2 {
        v.push(hop(40e6, 4, 300_000));
    }
    if stages >= 3 {
        v.push(hop(80e6, 2, 500_000));
    }
    v.truncate(stages);
    PathSpec::from_stages(v)
}

struct Arm {
    fidelity: Fidelity,
    stages: usize,
    /// Fastest replay wall time, seconds.
    wall_s: f64,
    /// Replayed packets per wall-clock second.
    pps: f64,
    packets: usize,
}

fn bench_chains(c: &mut Criterion, model: &FittedModel, duration: SimTime) -> Vec<Arm> {
    let replay = |fidelity: Fidelity, stages: usize| {
        let opts = ReplayOpts { fidelity, path: Some(chain(stages)), ..Default::default() };
        model.simulate_with(PROTOCOL, duration, REPLAY_SEED, opts)
    };
    let mut group = c.benchmark_group("path_replay");
    group.sample_size(Scale::from_args().pick(3, 5));
    let mut arms = Vec::new();
    for fidelity in [Fidelity::Packet, Fidelity::Flow] {
        for stages in 1..=MAX_STAGES {
            let trace = replay(fidelity, stages);
            assert!(trace.len() > 200, "{fidelity}/{stages}-stage replay too small to time");
            let stats = group
                .bench_function_timed(format!("{fidelity}_{stages}stage"), |b| {
                    b.iter(|| black_box(replay(fidelity, stages)))
                })
                .expect("measured");
            let wall_s = stats.min_ns / 1e9;
            arms.push(Arm {
                fidelity,
                stages,
                wall_s,
                pps: trace.len() as f64 / wall_s.max(1e-12),
                packets: trace.len(),
            });
        }
    }
    group.finish();
    arms
}

/// Read `--baseline <path>` from the args, if present.
fn baseline_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--baseline" {
            return args.next();
        }
    }
    None
}

/// Compare the fresh slowdown gauges against a committed manifest.
/// Returns the regressions found (empty = pass): a per-added-stage
/// slowdown factor must not grow by more than 25%. Raw pps is
/// deliberately not gated — it shifts with replay duration, while the
/// ratio of adjacent stage counts does not.
fn check_baseline(path: &str, fresh: &[(String, f64)]) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read baseline {path}: {e}")],
    };
    let json: serde_json::JsonValue = match serde_json::parse_value(&text) {
        Ok(v) => v,
        Err(e) => return vec![format!("cannot parse baseline {path}: {e}")],
    };
    let gauges = json.get("metrics").and_then(|m| m.get("gauges"));
    let mut failures = Vec::new();
    for (name, new) in fresh {
        let Some(old) = gauges.and_then(|g| g.get(name)).and_then(|v| v.as_f64()) else {
            continue; // gauge not in the committed manifest yet
        };
        if *new > old * 1.25 {
            failures.push(format!("{name}: {new:.2} vs baseline {old:.2} (>25% regression)"));
        }
    }
    failures
}

fn main() {
    let bench = ibox_bench::BenchRun::start("path");
    let mut criterion = Criterion::default();
    let scale = Scale::from_args();

    let train_duration = SimTime::from_secs(scale.pick(8, 20) as u64);
    let inst = Profile::Ethernet.sample(TRAIN_SEED, train_duration);
    let train = run_protocol(&inst, PROTOCOL, train_duration, TRAIN_SEED);
    let model = fit_model(&ModelKind::IBoxNet, &train);

    let duration = SimTime::from_secs(scale.pick(8, 20) as u64);
    let arms = bench_chains(&mut criterion, &model, duration);

    let registry = ibox_obs::global();
    let mut rows = Vec::new();
    let mut gated: Vec<(String, f64)> = Vec::new();
    let mut violations = Vec::new();
    for arm in &arms {
        registry
            .gauge(&format!("path.replay_pps_{}_{}stage", arm.fidelity, arm.stages))
            .set(arm.pps);
        let slowdown = if arm.stages > 1 {
            let prev = arms
                .iter()
                .find(|a| a.fidelity == arm.fidelity && a.stages == arm.stages - 1)
                .expect("previous stage count measured");
            let s = arm.wall_s / prev.wall_s.max(1e-12);
            let name = format!("path.slowdown_{}_{}stage_x", arm.fidelity, arm.stages);
            registry.gauge(&name).set(s);
            gated.push((name, s));
            if s > MAX_SLOWDOWN_PER_STAGE {
                violations.push(format!(
                    "{} {} -> {} stages: {s:.2}x slowdown (budget {MAX_SLOWDOWN_PER_STAGE}x)",
                    arm.fidelity,
                    arm.stages - 1,
                    arm.stages
                ));
            }
            Some(s)
        } else {
            None
        };
        rows.push(vec![
            arm.fidelity.to_string(),
            arm.stages.to_string(),
            cell(arm.packets as f64, 0),
            cell(arm.pps, 0),
            slowdown.map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Composed-path replay: per-stage-count throughput",
            &["fidelity", "stages", "packets", "replay pps", "slowdown vs k-1"],
            &rows,
        )
    );

    // Read the committed baseline BEFORE finish() overwrites the file.
    let baseline_failures =
        baseline_from_args().map(|p| check_baseline(&p, &gated)).unwrap_or_default();

    bench.finish();

    // The satellite guarantee, asserted on every run.
    assert!(
        violations.is_empty(),
        "per-added-stage slowdown budget exceeded:\n  {}",
        violations.join("\n  ")
    );

    if !baseline_failures.is_empty() {
        for f in &baseline_failures {
            eprintln!("path regression: {f}");
        }
        std::process::exit(1);
    }
}
