//! Table 1 — Feeding in cross traffic improves iBoxML accuracy on
//! real-time-conferencing data (§5.2).
//!
//! "Using about 540 traces from a real-time conferencing service, we
//! evaluate iBoxML with and without cross-traffic estimates … providing
//! cross-traffic as input reduces the deviation between the distribution
//! of 95th percentile per-call delay values in the ground-truth and in
//! the iBoxML predictions."
//!
//! Output format mirrors the paper's table: for each variant, the absolute
//! error (ms) and relative error (%) between the P25/P50/P75/mean of the
//! predicted per-call p95-delay distribution and the ground-truth one.

use ibox::iboxml::{IBoxMl, IBoxMlConfig};
use ibox_bench::{render_table, Scale};
use ibox_ml::TrainConfig;
use ibox_stats::quantile_summary;
use ibox_testbed::rtc::generate_calls;
use ibox_trace::metrics::delay_percentile_ms;

fn main() {
    let bench = ibox_bench::BenchRun::start("table1");
    let scale = Scale::from_args();
    let jobs = ibox_bench::jobs_from_args();
    let n_calls = scale.pick(24, 540);
    ibox_obs::info!("table1: generating {n_calls} synthetic RTC calls…");
    let calls = generate_calls(n_calls, 31_000);
    let (mut train, test) = calls.split(0.7);
    // CPU budget: LSTM training cost is linear in total training packets;
    // ~90 one-minute calls (≈1M packets) already saturate the small model.
    // The *test* distribution keeps the full call count.
    let cap = scale.pick(usize::MAX, 90);
    if train.traces.len() > cap {
        train.traces.truncate(cap);
    }
    ibox_obs::info!("table1: {} training calls, {} test calls", train.len(), test.len());

    let train_cfg = TrainConfig {
        epochs: scale.pick(3, 5),
        lr: 3e-3,
        tbptt: 64,
        clip: 5.0,
        loss_weight: 0.2,
        delay_weight: 1.0,
        ..Default::default()
    };
    // Seed ensemble: closed-loop LSTM unrolls are sensitive to the
    // training trajectory, so each variant trains a small ensemble and
    // each call's prediction is the median across members — a standard
    // variance-reduction step for recurrent generative models.
    let seeds: &[u64] = match scale {
        Scale::Quick => &[29],
        Scale::Full => &[29, 57, 91],
    };
    let fit = |with_ct: bool| -> Vec<IBoxMl> {
        ibox_runner::run_scoped(seeds.len(), jobs, |si| {
            let seed = seeds[si];
            ibox_obs::info!(
                "table1: training iBoxML {} cross-traffic input (seed {seed})…",
                if with_ct { "with" } else { "without" }
            );
            IBoxMl::fit(
                &train.traces,
                IBoxMlConfig::builder()
                    .hidden_sizes([24, 24])
                    .with_cross_traffic(with_ct)
                    .train(train_cfg)
                    .seed(seed)
                    .build(),
            )
        })
    };
    let without = fit(false);
    let with = fit(true);

    // Ground-truth distribution of per-call p95 delays.
    let gt: Vec<f64> = test.traces.iter().filter_map(|t| delay_percentile_ms(t, 0.95)).collect();
    let gt_summary = quantile_summary(&gt).expect("test calls exist");

    let evaluate = |ensemble: &[IBoxMl]| -> Vec<String> {
        // Generative use of the state-space model: sample delays from the
        // predicted distributions (the mean alone understates the tails
        // this table measures); per call, take the ensemble median.
        let pred: Vec<f64> = ibox_runner::run_scoped(test.traces.len(), jobs, |i| {
            let t = &test.traces[i];
            let per_seed: Vec<f64> = ensemble
                .iter()
                .filter_map(|m| delay_percentile_ms(&m.predict_trace_sampled(t, i as u64), 0.95))
                .collect();
            ibox_stats::percentile(&per_seed, 0.5)
        })
        .into_iter()
        .flatten()
        .collect();
        let s = quantile_summary(&pred).expect("predictions exist");
        let fmt =
            |p: f64, g: f64| format!("{:.0} ({:.0}%)", (p - g).abs(), (p - g).abs() / g * 100.0);
        vec![
            fmt(s.p25, gt_summary.p25),
            fmt(s.p50, gt_summary.p50),
            fmt(s.p75, gt_summary.p75),
            fmt(s.mean, gt_summary.mean),
        ]
    };

    ibox_obs::info!("table1: evaluating…");
    let mut row_no = vec!["No".to_string()];
    row_no.extend(evaluate(&without));
    let mut row_yes = vec!["Yes".to_string()];
    row_yes.extend(evaluate(&with));

    print!(
        "{}",
        render_table(
            "Table 1 — error in distribution of per-call p95 delay, ms (and %)",
            &["Cross traffic", "P25", "P50", "P75", "mean"],
            &[row_no, row_yes],
        )
    );
    println!(
        "(ground truth per-call p95 delay: P25 {:.0} ms, P50 {:.0} ms, P75 {:.0} ms, mean {:.0} ms over {} calls)",
        gt_summary.p25,
        gt_summary.p50,
        gt_summary.p75,
        gt_summary.mean,
        gt.len()
    );
    bench.finish();
}
