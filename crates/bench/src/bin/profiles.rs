//! Cross-profile ensemble check — "we have evaluated iBoxNet on other
//! paths too" (§3.1).
//!
//! Runs the Fig. 2 ensemble pipeline on every testbed profile (cellular,
//! cellular with proportional-fair scheduling, clean Ethernet, token-
//! bucket WiFi) and prints the per-profile KS distances for the treatment
//! protocol. The PF variant is the stress test the paper highlights
//! ("despite the complexity of cellular networks (e.g., proportional fair
//! scheduling)").
//!
//! Run: `cargo run -p ibox-bench --release --bin profiles [--quick]`

use ibox::abtest::{ensemble_test_jobs, ModelKind};
use ibox_bench::{cell, render_table, Scale};
use ibox_sim::SimTime;
use ibox_testbed::pantheon::generate_paired_datasets_jobs;
use ibox_testbed::Profile;

fn main() {
    let bench = ibox_bench::BenchRun::start("profiles");
    let scale = Scale::from_args();
    let jobs = ibox_bench::jobs_from_args();
    let n = scale.pick(4, 15);
    let duration = match scale {
        Scale::Quick => SimTime::from_secs(8),
        Scale::Full => SimTime::from_secs(20),
    };
    let profiles = [
        Profile::IndiaCellular,
        Profile::IndiaCellularPf,
        Profile::Ethernet,
        Profile::TokenBucketWifi,
    ];
    let mut rows = Vec::new();
    for p in profiles {
        ibox_obs::info!("profiles: {} ({n} paired runs)…", p.name());
        let ds = generate_paired_datasets_jobs(p, &["cubic", "vegas"], n, duration, 5_000, jobs);
        let r = ensemble_test_jobs(&ds[0], &ds[1], ModelKind::IBoxNet, duration, 11, jobs);
        rows.push(vec![
            p.name().to_string(),
            cell(r.ks_delay.b.statistic, 3),
            cell(r.ks_delay.b.p_value, 3),
            cell(r.ks_rate.b.statistic, 3),
            cell(r.ks_rate.b.p_value, 3),
            cell(r.ks_loss.b.statistic, 3),
            cell(r.ks_loss.b.p_value, 3),
        ]);
    }
    print!(
        "{}",
        render_table(
            "iBoxNet ensemble test across path profiles (Vegas vs GT)",
            &["profile", "D(d95)", "p(d95)", "D(rate)", "p(rate)", "D(loss)", "p(loss)"],
            &rows,
        )
    );
    bench.finish();
}
