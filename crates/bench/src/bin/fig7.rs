//! Fig. 7 — Control-loop bias and its mitigation.
//!
//! iBoxML is trained on traces of a delay-sensitive RTC control loop over
//! a simple ns-like topology, then asked to predict delays for a high-rate
//! CBR sender under varying cross traffic. The ground truth "exhibits high
//! delay frequently, but iBoxML rarely outputs high delay … due to the
//! control loop bias. Augmenting iBoxML with cross-traffic estimates as
//! additional input helps mitigate the bias."
//!
//! Output: three delay histograms (frequency % per bin) — ground truth,
//! iBoxML without cross traffic, iBoxML with cross traffic — plus the
//! high-delay mass of each.

use ibox::iboxml::{IBoxMl, IBoxMlConfig};
use ibox_bench::{cell, render_table, Scale};
use ibox_ml::TrainConfig;
use ibox_sim::SimTime;
use ibox_stats::Histogram;
use ibox_testbed::rtc::{bias_test_trace, bias_training_trace, BIAS_CT_LEVELS};
use ibox_trace::FlowTrace;

fn main() {
    let bench = ibox_bench::BenchRun::start("fig7");
    let scale = Scale::from_args();
    let jobs = ibox_bench::jobs_from_args();
    let seeds_per_level = scale.pick(1, 3);
    let duration = match scale {
        Scale::Quick => SimTime::from_secs(12),
        Scale::Full => SimTime::from_secs(30),
    };

    // Training corpus: the RTC control loop at every (below-capacity)
    // cross-traffic level. The on-off cross traffic creates transient
    // delay spikes at ON edges — rare enough that delays stay low overall
    // (the bias), correlated enough with the cross-traffic estimate that
    // the §5.2 melding can learn from them.
    ibox_obs::info!("fig7: generating RTC training traces…");
    let train: Vec<FlowTrace> =
        ibox_runner::run_scoped(BIAS_CT_LEVELS.len() * seeds_per_level, jobs, |i| {
            let (li, s) = (i / seeds_per_level, i % seeds_per_level);
            bias_training_trace(BIAS_CT_LEVELS[li], duration, (li * 20 + s) as u64)
        });

    // Test corpus: high-rate CBR at the same cross-traffic levels.
    ibox_obs::info!("fig7: generating CBR test traces…");
    let test: Vec<FlowTrace> = ibox_runner::run_scoped(BIAS_CT_LEVELS.len(), jobs, |li| {
        bias_test_trace(BIAS_CT_LEVELS[li], duration, (900 + li) as u64)
    });

    // Fig. 7 is a *controlled* ns-like topology: the configuration is
    // known, so the cross-traffic estimator gets the true (b, d, B)
    // instead of violating its saturating-sender assumption on RTC traces.
    let topo = ibox_testbed::rtc::bias_topology();
    let known = ibox::StaticParams {
        bandwidth_bps: topo.rate.mean_rate_bps(),
        prop_delay: topo.prop_delay,
        buffer_bytes: topo.buffer_bytes,
    };

    let train_cfg = TrainConfig {
        epochs: scale.pick(8, 15),
        lr: 3e-3,
        tbptt: 64,
        clip: 5.0,
        loss_weight: 0.2,
        delay_weight: 1.0,
        ..Default::default()
    };
    ibox_obs::info!("fig7: training iBoxML without cross-traffic input…");
    let without = IBoxMl::fit(
        &train,
        IBoxMlConfig::builder()
            .hidden_sizes([24, 24])
            .with_cross_traffic(false)
            .train(train_cfg)
            .seed(21)
            .build(),
    );
    ibox_obs::info!("fig7: training iBoxML with cross-traffic input…");
    let with = IBoxMl::fit(
        &train,
        IBoxMlConfig::builder()
            .hidden_sizes([24, 24])
            .with_cross_traffic(true)
            .known_params(known)
            .train(train_cfg)
            .seed(21)
            .build(),
    );

    // Pool delays across the CBR test traces.
    let gt_delays: Vec<f64> = test
        .iter()
        .flat_map(|t| t.delivered().filter_map(|r| r.delay_ms()).collect::<Vec<_>>())
        .collect();
    // Deterministic (conditional-mean) predictions: Fig. 7's claim is
    // about systematic bias in what the model *expects*, so the mean —
    // not a variance-inflated sample — is the honest probe.
    let pred = |model: &IBoxMl| -> Vec<f64> {
        test.iter().flat_map(|t| model.predict_delays(t)).map(|d| d * 1e3).collect()
    };
    ibox_obs::info!("fig7: predicting test delays…");
    let without_delays = pred(&without);
    let with_delays = pred(&with);

    // Histograms over 0–250 ms in 10 bins (Fig. 7's axes).
    let (lo, hi, bins) = (0.0, 250.0, 10);
    let mut rows = Vec::new();
    let h_gt = Histogram::from_sample(lo, hi, bins, &gt_delays);
    let h_wo = Histogram::from_sample(lo, hi, bins, &without_delays);
    let h_wi = Histogram::from_sample(lo, hi, bins, &with_delays);
    let (f_gt, f_wo, f_wi) =
        (h_gt.frequencies_pct(), h_wo.frequencies_pct(), h_wi.frequencies_pct());
    for b in 0..bins {
        rows.push(vec![
            format!("{:.0}-{:.0}", h_gt.bin_center(b) - 12.5, h_gt.bin_center(b) + 12.5),
            cell(f_gt[b], 1),
            cell(f_wo[b], 1),
            cell(f_wi[b], 1),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Fig. 7 — delay histograms for the high-rate CBR test (frequency %)",
            &["delay_ms", "ground-truth", "iboxml w/o CT", "iboxml with CT"],
            &rows,
        )
    );

    // The bias in two numbers: mean predicted delay and high-delay mass.
    let mean = |d: &[f64]| {
        if d.is_empty() {
            0.0
        } else {
            d.iter().sum::<f64>() / d.len() as f64
        }
    };
    let mass_above = |d: &[f64], thresh: f64| {
        if d.is_empty() {
            0.0
        } else {
            100.0 * d.iter().filter(|x| **x > thresh).count() as f64 / d.len() as f64
        }
    };
    let rows2 = [
        ("ground-truth", &gt_delays),
        ("iboxml w/o CT", &without_delays),
        ("iboxml with CT", &with_delays),
    ]
    .iter()
    .map(|(name, d)| {
        vec![
            name.to_string(),
            cell(mean(d), 1),
            cell(mass_above(d, 75.0), 1),
            cell(mass_above(d, 100.0), 1),
        ]
    })
    .collect::<Vec<_>>();
    print!(
        "{}",
        render_table(
            "Fig. 7 — summary: mean predicted delay; high-delay mass",
            &["series", "mean_ms", "pct > 75ms", "pct > 100ms"],
            &rows2,
        )
    );
    bench.finish();
}
