//! Tracing-overhead guardrail for the simulator hot path.
//!
//! Measures the saturated-bottleneck packet throughput of `perf.rs`'s
//! sim benchmark in three modes:
//!
//! 1. **disabled** — trace collection off. The per-event cost is one
//!    thread-local emptiness check, so this must match the untraced
//!    `perf.sim_packets_per_sec` number (~0% overhead).
//! 2. **enabled** — collection on, every run under a root span. Only
//!    the `sim-run` span is recorded (two events per run); the issue
//!    budget is <5% regression vs disabled.
//! 3. **timeline** — additionally records the queue-depth counter track
//!    and per-drop/RTO instants (opt-in `Simulation::set_timeline`).
//!    Recorded for visibility; not gated (its cost scales with the
//!    sample interval, not the packet rate).
//!
//! Results land as `trace.*` gauges in `BENCH_trace.json`. With
//! `--baseline <path>` the committed manifest is read before the new
//! one is written and the process exits nonzero on a >20% throughput
//! regression in any mode (same convention as `perf.rs`).
//!
//! Run: `cargo run -p ibox-bench --release --bin trace [--quick]
//! [--baseline BENCH_trace.json]`

use std::hint::black_box;

use criterion::{Criterion, Stats};
use ibox_bench::{cell, render_table, Scale};
use ibox_sim::{FixedWindow, FlowConfig, PathConfig, SimTime, Simulation};

/// Throughput from the fastest sample (background load only adds time).
fn best_per_sec(stats: &Stats) -> f64 {
    1e9 / stats.min_ns.max(1e-9)
}

fn build_sim(secs: u64, timeline: bool) -> Simulation {
    let mut sim = Simulation::new(
        PathConfig::simple(20e6, SimTime::from_millis(20), 100_000),
        SimTime::from_secs(secs),
        1,
    );
    sim.set_timeline(timeline);
    sim.add_flow(
        FlowConfig::bulk("main", SimTime::from_secs(secs)),
        Box::new(FixedWindow::new(200.0)),
    );
    sim
}

/// Packets/s for one collection mode. `traced` wraps every run in a
/// fresh root scope (as the serving layer does per request).
fn bench_mode(c: &mut Criterion, name: &str, traced: bool, timeline: bool) -> f64 {
    let secs = Scale::from_args().pick(3, 10) as u64;
    ibox_obs::trace::set_enabled(traced);
    let packets = build_sim(secs, false).run().flow_stats[0].sent;
    assert!(packets > 0, "saturated flow must send packets");

    // The per-mode deltas under test are small (<5%), so the min needs
    // many samples to shake off scheduler noise on a shared machine.
    let mut group = c.benchmark_group("sim_tracing_overhead");
    group.sample_size(Scale::from_args().pick(15, 20));
    let stats = group
        .bench_function_timed(name, |b| {
            b.iter(|| {
                let scope = traced.then(|| {
                    let id = ibox_obs::trace::next_trace_id();
                    ibox_obs::trace::start_root(id, "bench-sim").expect("tracing enabled")
                });
                let out = black_box(build_sim(secs, timeline).run());
                drop(scope);
                out
            })
        })
        .expect("measured");
    group.finish();
    packets as f64 * best_per_sec(&stats)
}

/// Read `--baseline <path>` from the args, if present.
fn baseline_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--baseline" {
            return args.next();
        }
    }
    None
}

/// Compare fresh rate gauges against a committed manifest; rates must
/// not fall below 80% of the baseline (min-of-samples tames the rest).
fn check_baseline(path: &str, fresh: &[(&str, f64)]) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read baseline {path}: {e}")],
    };
    let json: serde_json::JsonValue = match serde_json::parse_value(&text) {
        Ok(v) => v,
        Err(e) => return vec![format!("cannot parse baseline {path}: {e}")],
    };
    let gauges = json.get("metrics").and_then(|m| m.get("gauges"));
    let mut failures = Vec::new();
    for (name, new) in fresh {
        let Some(old) = gauges.and_then(|g| g.get(name)).and_then(|v| v.as_f64()) else {
            continue;
        };
        if *new < old * 0.80 {
            failures.push(format!("{name}: {new:.0} vs baseline {old:.0} (>20% regression)"));
        }
    }
    failures
}

fn main() {
    let bench = ibox_bench::BenchRun::start("trace");
    let mut criterion = Criterion::default();

    let disabled = bench_mode(&mut criterion, "collection_disabled", false, false);
    let enabled = bench_mode(&mut criterion, "collection_enabled", true, false);
    let timeline = bench_mode(&mut criterion, "timeline_mode", true, true);
    ibox_obs::trace::set_enabled(false);

    let pct = |mode: f64| (1.0 - mode / disabled.max(1e-9)) * 100.0;
    let registry = ibox_obs::global();
    registry.gauge("trace.sim_packets_per_sec_disabled").set(disabled);
    registry.gauge("trace.sim_packets_per_sec_enabled").set(enabled);
    registry.gauge("trace.sim_packets_per_sec_timeline").set(timeline);
    registry.gauge("trace.overhead_pct_enabled").set(pct(enabled));
    registry.gauge("trace.overhead_pct_timeline").set(pct(timeline));

    print!(
        "{}",
        render_table(
            "Sim throughput under trace collection (packets/s)",
            &["mode", "packets/s", "overhead %"],
            &[
                vec!["disabled".into(), cell(disabled, 0), cell(pct(disabled), 1)],
                vec!["enabled (span only)".into(), cell(enabled, 0), cell(pct(enabled), 1)],
                vec!["enabled + timeline".into(), cell(timeline, 0), cell(pct(timeline), 1)],
            ],
        )
    );

    // Read the committed baseline BEFORE finish() overwrites the file.
    let baseline_failures = baseline_from_args()
        .map(|p| {
            check_baseline(
                &p,
                &[
                    ("trace.sim_packets_per_sec_disabled", disabled),
                    ("trace.sim_packets_per_sec_enabled", enabled),
                ],
            )
        })
        .unwrap_or_default();

    bench.finish();

    assert!(
        enabled >= disabled * 0.95,
        "span collection must cost <5% sim throughput: \
         {enabled:.0} enabled vs {disabled:.0} disabled ({:.1}% overhead)",
        pct(enabled)
    );
    if !baseline_failures.is_empty() {
        for f in &baseline_failures {
            eprintln!("trace overhead regression: {f}");
        }
        std::process::exit(1);
    }
}
