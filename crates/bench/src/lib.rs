//! # ibox-bench
//!
//! The experiment harness: one binary per figure/table of the paper's
//! evaluation, plus Criterion microbenchmarks.
//!
//! | Target | Paper artifact | Invocation |
//! |---|---|---|
//! | `fig2` | Fig. 2 — ensemble test, iBoxNet vs GT (rate / p95 delay / loss) | `cargo run -p ibox-bench --release --bin fig2` |
//! | `fig3` | Fig. 3 — ablations: no cross traffic & statistical loss | `... --bin fig3` |
//! | `fig4` | Fig. 4 — instance test: clustering + t-SNE + rate alignment | `... --bin fig4` |
//! | `fig5` | Fig. 5 — reordering-rate CDFs (GT / iBoxML / iBoxNet+LSTM / +Linear) | `... --bin fig5` |
//! | `fig7` | Fig. 7 — control-loop bias delay histograms | `... --bin fig7` |
//! | `fig8` | Fig. 8 — SAX behaviour-discovery pattern tables | `... --bin fig8` |
//! | `table1` | Table 1 — iBoxML ± cross traffic on RTC calls | `... --bin table1` |
//! | benches | §4.2 — per-packet inference latency; sim throughput; estimation cost | `cargo bench -p ibox-bench` |
//!
//! Every binary takes an optional `--quick` flag that shrinks dataset
//! sizes for smoke-testing; the full runs match the scales reported in
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small datasets for smoke tests (`--quick`).
    Quick,
    /// The scale recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parse from process args: `--quick` selects [`Scale::Quick`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Pick `q` under `--quick`, else `f`.
    pub fn pick(self, q: usize, f: usize) -> usize {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

/// Parse `--jobs N` from the process args. `0` (the default) means all
/// cores. Every figure binary routes its independent runs through the
/// `ibox-runner` pool, so `--jobs` trades wall time only — results are
/// bit-identical at any value.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        }
    }
    0
}

/// One figure/table binary's run record: times the run and, on
/// [`finish`](BenchRun::finish), writes `BENCH_<name>.json` — a run
/// manifest embedding the full global metrics snapshot (simulator
/// counters, estimation spans, ML training stats) so every reported
/// number is traceable to what actually ran.
pub struct BenchRun {
    name: String,
    builder: ibox_obs::RunManifestBuilder,
}

impl BenchRun {
    /// Start timing the bench binary `name` (e.g. `fig2`).
    pub fn start(name: &str) -> Self {
        ibox_obs::info!("{name}: starting ({:?})", Scale::from_args());
        Self {
            name: name.to_string(),
            builder: ibox_obs::RunManifestBuilder::new(&format!("bench:{name}")),
        }
    }

    /// Write `BENCH_<name>.json` next to the working directory with the
    /// global metrics snapshot. Failures are logged, not fatal — the
    /// figures on stdout are the primary artifact.
    pub fn finish(self) {
        let manifest = self.builder.finish(ibox_obs::global().snapshot());
        let path = std::path::PathBuf::from(format!("BENCH_{}.json", self.name));
        match manifest.write_to(&path) {
            Ok(()) => ibox_obs::info!("{}: metrics manifest in {}", self.name, path.display()),
            Err(e) => {
                ibox_obs::warn!("{}: cannot write {}: {e}", self.name, path.display());
            }
        }
    }
}

/// Render a numeric table: header row + aligned columns (plain text, the
/// binaries' stdout is the "figure").
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "{}", line(&header_cells, &widths));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        let _ = writeln!(out, "{}", line(row, &widths));
    }
    out
}

/// Format a float with fixed precision as a table cell.
pub fn cell(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Summarize a sample as `mean p25 p50 p75` cells.
pub fn dist_cells(sample: &[f64]) -> Vec<String> {
    let s = ibox_stats::quantile_summary(sample).unwrap_or(ibox_stats::QuantileSummary {
        p25: 0.0,
        p50: 0.0,
        p75: 0.0,
        mean: 0.0,
    });
    vec![cell(s.mean, 2), cell(s.p25, 2), cell(s.p50, 2), cell(s.p75, 2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "T",
            &["name", "v"],
            &[vec!["a".into(), "1.0".into()], vec!["long".into(), "2.5".into()]],
        );
        assert!(t.contains("## T"));
        assert!(t.contains("long"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(2, 30), 2);
        assert_eq!(Scale::Full.pick(2, 30), 30);
    }

    #[test]
    fn dist_cells_summarize() {
        let c = dist_cells(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0], "2.50");
    }
}
