//! In-tree stand-in for `serde`: a value-tree serialization framework.
//!
//! The build environment cannot reach a crates registry, so the workspace
//! vendors a minimal serialization layer with the same *spelling* as serde
//! at every call site (`#[derive(Serialize, Deserialize)]`,
//! `serde_json::to_string`, `serde_json::from_str`) but a much simpler
//! model underneath: types convert to and from a [`Value`] tree, and
//! `serde_json` (also vendored) renders that tree as JSON.
//!
//! Supported surface, matching what this workspace uses:
//! * `#[derive(Serialize, Deserialize)]` on structs (named, newtype,
//!   tuple, unit) and enums (unit / newtype / tuple / struct variants,
//!   externally tagged like upstream serde).
//! * `#[serde(skip)]` on named struct fields (skipped on write, filled
//!   with `Default::default()` on read).
//! * Primitives, `String`, `Option`, `Vec`, arrays-as-vecs, tuples up to
//!   arity 4, and `BTreeMap<String, V>`.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The data model every serializable type passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers (kept exact — `u64` does not fit in `f64`).
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Numeric view as `f64` (integers widen; precision loss accepted at
    /// the caller's discretion).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// "expected X, found Y" constructor.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }

    /// Missing-field constructor.
    pub fn missing(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` while reading {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Render `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro support: value of a field absent from the input object.
///
/// Mirrors upstream serde's behaviour — `Option<T>` fields read as `None`
/// (they deserialize from `Null`); anything else reports a missing field.
pub fn missing_field<T: Deserialize>(ty: &str, field: &str) -> Result<T, Error> {
    T::from_value(&Value::Null).map_err(|_| Error::missing(ty, field))
}

// ---------------------------------------------------------------- numbers

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of range"))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = i64::from(*self);
                if wide >= 0 { Value::U64(wide as u64) } else { Value::I64(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of range"))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| Error(format!("integer {n} out of range")))
        })
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| Error(format!("integer {n} out of range")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Upstream serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => other.as_f64().ok_or_else(|| Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

// ----------------------------------------------------- other primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", other)),
        }
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        if items.len() != N {
            return Err(Error(format!("expected an array of {N} elements, found {}", items.len())));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v))).collect()
            }
            other => Err(Error::expected("object", other)),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let expected = [$($n,)+].len();
                if items.len() != expected {
                    return Err(Error(format!(
                        "expected a {expected}-tuple, found {} elements", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"x".to_value()).unwrap(), "x");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(), vec![1, 2]);
    }

    #[test]
    fn u64_stays_exact_beyond_f64() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn tuples_roundtrip() {
        let t = (1u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u64::from_value(&Value::Str("nope".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
    }

    #[test]
    fn map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let back = BTreeMap::<String, u64>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
