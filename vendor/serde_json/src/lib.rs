//! In-tree stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree as JSON and parses JSON back into it.
//!
//! The build environment cannot reach a crates registry, so this implements
//! exactly the surface the workspace uses: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and an [`Error`] type. Numbers keep `u64` precision (the
//! workspace stores nanosecond timestamps that exceed 2^53), and floats are
//! written with Rust's shortest-round-trip `Display`, so every finite value
//! survives a round trip bit-for-bit. Non-finite floats serialize as `null`,
//! matching upstream.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn at(msg: impl Into<String>, pos: usize) -> Self {
        Error(format!("{} at byte {pos}", msg.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// -------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; upstream serde_json writes null.
        out.push_str("null");
        return;
    }
    let s = x.to_string();
    out.push_str(&s);
    // `Display` for f64 prints integral values without a fractional part
    // ("1" for 1.0); keep the value typed as a float on re-parse.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters after JSON value", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(Error::at(format!("unexpected character `{}`", other as char), self.pos))
            }
            None => Err(Error::at("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::at("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stop on ASCII
                // boundaries, so this slice is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::at("invalid low surrogate", self.pos));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(
                                c.ok_or_else(|| Error::at("invalid unicode escape", self.pos))?,
                            );
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(Error::at("invalid escape sequence", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(Error::at("control character in string", self.pos)),
                None => return Err(Error::at("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(Error::at("expected 4 hex digits", self.pos)),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(n).map(|n| -n) {
                        return Ok(Value::I64(neg));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            // Fall through to f64 for magnitudes beyond 64-bit integers.
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for src in ["null", "true", "false", "0", "-5", "1.5", "\"hi\""] {
            let v = parse_value(src).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, src);
        }
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 3;
        let v = parse_value(&big.to_string()).unwrap();
        assert_eq!(v, Value::U64(big));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1e-12, 123456.789, -2.5e30, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "via {s}");
        }
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nquote\"slash\\tab\tünïcödé \u{1F600}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_parses() {
        let back: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let src = r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#;
        let v = parse_value(src).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, src);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let src = r#"{"a":[1,2],"b":{"c":"x"}}"#;
        let v = parse_value(src).unwrap();
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        assert!(pretty.contains("\n  "));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }
}
