//! In-tree stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment cannot reach a crates registry, so the workspace
//! vendors the small slice of `rand` it actually uses: a seedable,
//! deterministic [`rngs::StdRng`], the [`Rng`] extension trait with
//! `random::<T>()` / `random_range(..)`, and [`SeedableRng`].
//!
//! The generator is xoshiro256** seeded through a SplitMix64 expansion —
//! not the upstream ChaCha12, so *values differ from upstream `rand`*, but
//! every consumer in this workspace only relies on determinism-per-seed
//! and uniformity, never on exact upstream streams.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `StandardUniform`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-40 for the spans used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an inverted range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an inverted range");
                let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
signed_int_range!(i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let u: $t = Standard::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (`[0, 1)` for floats, full range for ints).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard recipe for xoshiro seeds;
            // guarantees a non-zero state for every seed.
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl NextPub for StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn f64_is_uniform_unit() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.random_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4700..5300).contains(&heads), "heads = {heads}");
    }
}
