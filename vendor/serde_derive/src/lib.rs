//! Derive macros for the in-tree `serde` shim.
//!
//! With no registry access there is no `syn`/`quote`, so the item is parsed
//! directly from its `TokenStream`: attributes and visibility are skipped,
//! field/variant names are collected (types are never needed — the generated
//! code lets inference pick the right `Deserialize` impl), and the output
//! `impl` is assembled as a string and re-parsed.
//!
//! Supported shapes, matching what this workspace derives on:
//! named / newtype / tuple / unit structs, and enums with unit, newtype,
//! tuple, and struct variants (externally tagged, like upstream serde).
//! `#[serde(skip)]` on fields is honoured (omitted on write, filled with
//! `Default::default()` on read). Generics are not supported.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

/// `#[derive(Serialize)]` for the vendored serde shim.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]` for the vendored serde shim.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive generated invalid Deserialize impl")
}

// ------------------------------------------------------------- parsing

/// Consume leading attributes; report whether any was `#[serde(skip)]`.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if is_serde_skip(g) {
                        skip = true;
                    }
                    *i += 1;
                }
            }
            _ => break,
        }
    }
    skip
}

fn is_serde_skip(bracket: &Group) -> bool {
    let inner: Vec<TokenTree> = bracket.stream().into_iter().collect();
    if let [TokenTree::Ident(path), TokenTree::Group(args)] = &inner[..] {
        if path.to_string() == "serde" {
            return args
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"));
        }
    }
    false
}

/// Consume `pub` / `pub(...)` if present.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn ident_at(toks: &[TokenTree], i: usize, what: &str) -> String {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected {what}, found {other:?}"),
    }
}

/// Count comma-separated chunks at angle-bracket depth zero.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut pending = false;
    let mut depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    count
}

/// Parse `name: Type, ...` out of a brace group's stream, honouring
/// attributes and visibility; types are skipped, not interpreted.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = take_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i, "a field name");
        i += 1;
        // Skip the `:` and the type, up to the next top-level comma.
        debug_assert!(
            matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < toks.len() {
        take_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i, "a variant name");
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                i += 1;
                if arity == 1 {
                    Shape::Newtype
                } else {
                    Shape::Tuple(arity)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        // Skip to (and over) the separating comma.
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    take_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = ident_at(&toks, i, "`struct` or `enum`");
    i += 1;
    let name = ident_at(&toks, i, "the item name");
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (deriving on `{name}`)");
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde_derive: cannot derive on `{other}` items"),
    };
    Item { name, kind }
}

// ------------------------------------------------------------- codegen

fn push_named_fields_to_object(
    out: &mut String,
    fields: &[Field],
    accessor: impl Fn(&str) -> String,
) {
    out.push_str(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        if f.skip {
            continue;
        }
        out.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_value({a})));\n",
            n = f.name,
            a = accessor(&f.name),
        ));
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        ItemKind::NamedStruct(fields) => {
            push_named_fields_to_object(&mut body, fields, |f| format!("&self.{f}"));
            body.push_str("::serde::Value::Object(__fields)\n");
        }
        ItemKind::TupleStruct(1) => {
            body.push_str("::serde::Serialize::to_value(&self.0)\n");
        }
        ItemKind::TupleStruct(arity) => {
            body.push_str(
                "let mut __items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n",
            );
            for idx in 0..*arity {
                body.push_str(&format!(
                    "__items.push(::serde::Serialize::to_value(&self.{idx}));\n"
                ));
            }
            body.push_str("::serde::Value::Array(__items)\n");
        }
        ItemKind::UnitStruct => {
            body.push_str("::serde::Value::Null\n");
        }
        ItemKind::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => body.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Newtype => body.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec::Vec::from([\
                         (::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(__f0))])),\n"
                    )),
                    Shape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __items: ::std::vec::Vec<::serde::Value> = \
                             ::std::vec::Vec::new();\n",
                            binds = binders.join(", "),
                        ));
                        for b in &binders {
                            body.push_str(&format!(
                                "__items.push(::serde::Serialize::to_value({b}));\n"
                            ));
                        }
                        body.push_str(&format!(
                            "::serde::Value::Object(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Array(__items))]))\n}}\n"
                        ));
                    }
                    Shape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        body.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n",
                            binds = binds.join(", "),
                        ));
                        push_named_fields_to_object(&mut body, fields, |f| f.to_string());
                        body.push_str(&format!(
                            "::serde::Value::Object(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(__fields))]))\n}}\n"
                        ));
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
}

/// Generate the field initializers of a named-field constructor, reading
/// each field out of the object expression `src`.
fn push_named_fields_from_object(out: &mut String, ty_label: &str, src: &str, fields: &[Field]) {
    for f in fields {
        if f.skip {
            out.push_str(&format!("{n}: ::std::default::Default::default(),\n", n = f.name));
        } else {
            out.push_str(&format!(
                "{n}: match {src}.get(\"{n}\") {{\n\
                 ::std::option::Option::Some(__f) => ::serde::Deserialize::from_value(__f)?,\n\
                 ::std::option::Option::None => \
                 ::serde::missing_field(\"{ty_label}\", \"{n}\")?,\n}},\n",
                n = f.name,
            ));
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        ItemKind::NamedStruct(fields) => {
            body.push_str(&format!(
                "if __v.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(\
                 ::serde::Error::expected(\"an object for `{name}`\", __v));\n}}\n\
                 ::std::result::Result::Ok({name} {{\n"
            ));
            push_named_fields_from_object(&mut body, name, "__v", fields);
            body.push_str("})\n");
        }
        ItemKind::TupleStruct(1) => {
            body.push_str(&format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n"
            ));
        }
        ItemKind::TupleStruct(arity) => {
            body.push_str(&format!(
                "let __items = match __v.as_array() {{\n\
                 ::std::option::Option::Some(__items) if __items.len() == {arity} => __items,\n\
                 _ => return ::std::result::Result::Err(::serde::Error::expected(\
                 \"a {arity}-element array for `{name}`\", __v)),\n}};\n\
                 ::std::result::Result::Ok({name}(\n"
            ));
            for idx in 0..*arity {
                body.push_str(&format!("::serde::Deserialize::from_value(&__items[{idx}])?,\n"));
            }
            body.push_str("))\n");
        }
        ItemKind::UnitStruct => {
            body.push_str(&format!("::std::result::Result::Ok({name})\n"));
        }
        ItemKind::Enum(variants) => {
            // Externally tagged: a unit variant is its name as a string, any
            // payload-carrying variant is a single-key `{ "Name": payload }`.
            body.push_str("match __v {\n::serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.shape, Shape::Unit) {
                    body.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    ));
                }
            }
            body.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::Error(::std::format!(\
                 \"unknown unit variant `{{__other}}` for enum `{name}`\"))),\n}},\n\
                 ::serde::Value::Object(__tagged) if __tagged.len() == 1 => {{\n\
                 let (__tag, __inner) = &__tagged[0];\n\
                 match __tag.as_str() {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Newtype => body.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(arity) => {
                        body.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = match __inner.as_array() {{\n\
                             ::std::option::Option::Some(__items) if __items.len() == {arity} \
                             => __items,\n\
                             _ => return ::std::result::Result::Err(::serde::Error::expected(\
                             \"a {arity}-element array for `{name}::{vn}`\", __inner)),\n}};\n\
                             ::std::result::Result::Ok({name}::{vn}(\n"
                        ));
                        for idx in 0..*arity {
                            body.push_str(&format!(
                                "::serde::Deserialize::from_value(&__items[{idx}])?,\n"
                            ));
                        }
                        body.push_str("))\n}\n");
                    }
                    Shape::Struct(fields) => {
                        body.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{\n"
                        ));
                        push_named_fields_from_object(
                            &mut body,
                            &format!("{name}::{vn}"),
                            "__inner",
                            fields,
                        );
                        body.push_str("}),\n");
                    }
                }
            }
            body.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::Error(::std::format!(\
                 \"unknown variant `{{__other}}` for enum `{name}`\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::Error::expected(\
                 \"a string or single-key object for enum `{name}`\", __other)),\n}}\n"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}}}\n}}\n"
    )
}
