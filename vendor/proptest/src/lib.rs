//! In-tree stand-in for `proptest`.
//!
//! The build environment cannot reach a crates registry, so this implements
//! the slice of proptest this workspace's property tests use: the
//! [`proptest!`] macro family, range/tuple/`vec`/`prop_map` strategies,
//! `prop::bool::weighted`, `any::<T>()`, `prop_assert*` / `prop_assume!`,
//! and [`ProptestConfig`] with a `cases` knob.
//!
//! Differences from upstream, deliberate for a shim:
//! * **No shrinking** — a failing case reports its inputs' seed, not a
//!   minimized counterexample.
//! * **Deterministic** — case seeds derive from the test name and case
//!   index, so failures reproduce exactly across runs.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies; deterministic per test-name + case index.
pub type TestRng = StdRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the inputs don't apply; try others.
    Reject(String),
}

impl TestCaseError {
    /// Assertion-failure constructor.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Assumption-rejection constructor.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

// ----------------------------------------------------------- strategies

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (upstream `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.random()
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — unlike upstream this never yields NaN/inf.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range for collection strategy");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`weighted`].
    pub struct Weighted {
        p: f64,
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(self.p)
        }
    }
}

// --------------------------------------------------------------- runner

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Drive one property: generate cases until `config.cases` pass, panic on
/// the first failure. Called by the code `proptest!` expands to.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejects = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        let seed = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt.wrapping_add(1));
        let mut rng = TestRng::seed_from_u64(seed);
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejects}; last assumption: {why})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed after {passed} passing case(s) \
                     (deterministic case seed {seed:#x}):\n{msg}"
                );
            }
        }
    }
}

// --------------------------------------------------------------- macros

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expand each test fn in turn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                (move || -> $crate::TestCaseResult {
                    { $body }
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body; failure reports the
/// formatted message and fails the whole test (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            __r,
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            ::std::format!($($fmt)+),
                            __l,
                            __r,
                        ),
                    ));
                }
            }
        }
    };
}

/// Discard the current case (does not count toward `cases`) when its
/// generated inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_honours_size(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 10);
            }
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(0.0f32..1.0, 3)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0u64..100, prop::bool::weighted(0.5)).prop_map(|(n, b)| (n * 2, b)),
        ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.0 < 200);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let cfg = ProptestConfig { cases: 8, ..ProptestConfig::default() };
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            crate::run_cases(&cfg, "runner_is_deterministic", |rng| {
                out.push(crate::Strategy::generate(&(0u64..1_000_000), rng));
                Ok(())
            });
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn reject_cap_panics() {
        let cfg = ProptestConfig { cases: 1, max_global_rejects: 10 };
        crate::run_cases(&cfg, "reject_cap_panics", |_rng| Err(TestCaseError::reject("always")));
    }
}
