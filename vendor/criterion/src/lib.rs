//! In-tree stand-in for `criterion`.
//!
//! The build environment cannot reach a crates registry, so this implements
//! the benchmark-harness surface the workspace's `benches/` use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function` with a
//! [`Bencher`] (`b.iter(..)`), `finish`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is wall-clock `Instant` with a short
//! calibration pass; there is no statistical analysis or HTML report —
//! each benchmark prints `min / mean / max` per iteration to stdout.

use std::time::{Duration, Instant};

/// Wall-clock time a benchmark sample should roughly take. Short enough to
/// keep `cargo bench` snappy, long enough to dominate timer resolution.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 20 }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (each sample runs a
    /// calibrated batch of iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark and print its per-iteration timing.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_function_timed(id, routine);
        self
    }

    /// Like [`BenchmarkGroup::bench_function`], but also returns the
    /// measured [`Stats`] so callers (e.g. the `perf` binary) can assert on
    /// throughput or persist the numbers. `None` if the routine never
    /// called `b.iter`.
    pub fn bench_function_timed<F>(&mut self, id: impl AsRef<str>, mut routine: F) -> Option<Stats>
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { sample_size: self.sample_size, report: None };
        routine(&mut bencher);
        let label = format!("{}/{}", self.name, id.as_ref());
        match bencher.report {
            Some(r) => println!(
                "{label:<50} time: [{} {} {}]  ({} iters x {} samples)",
                fmt_ns(r.min_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.max_ns),
                r.iters_per_sample,
                r.samples,
            ),
            None => println!("{label:<50} (no measurement: b.iter was never called)"),
        }
        bencher.report
    }

    /// End the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// Per-iteration timing statistics of one measured benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest sample's mean nanoseconds per iteration.
    pub min_ns: f64,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Slowest sample's mean nanoseconds per iteration.
    pub max_ns: f64,
    /// Iterations per timed sample (from the calibration pass).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}

impl Stats {
    /// Mean throughput in iterations per second.
    pub fn iters_per_sec(&self) -> f64 {
        1e9 / self.mean_ns.max(1e-9)
    }
}

/// Kept as an alias of the public stats type: `Bencher` records one of
/// these per `iter` call.
type Report = Stats;

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Measure `routine`, keeping its return value alive so the optimizer
    /// cannot delete the work (callers typically add `black_box` too).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: time one iteration to size the per-sample batch.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000);

        let mut per_iter_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            per_iter_ns.push(elapsed / iters_per_sample as f64);
        }
        let min = per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter_ns.iter().copied().fold(0.0f64, f64::max);
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        self.report = Some(Report {
            min_ns: min,
            mean_ns: mean,
            max_ns: max,
            iters_per_sample: iters_per_sample as u64,
            samples: self.sample_size,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a runnable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main()` running each group (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; nothing to parse.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_timing() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        group.finish();
        assert!(ran > 3, "routine should run calibration + samples, ran {ran}");
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }
}
