#!/usr/bin/env bash
# Local gate: everything CI would run, offline.
#   scripts/check.sh [--quick] [--perf]
#
# --quick additionally smoke-tests the release binary end to end: a
# 5-spec batch file (every model kind, incl. a tiny iBoxML) through
# `ibox batch --jobs 2 --model-cache`, then a fit → save → reload →
# replay loop asserting byte-identical traces.
# --quick also smoke-tests the serving daemon, including a causally
# traced fit (`--trace-id` → `GET /trace/<id>`) and the prometheus
# metrics exposition, plus a `--fidelity flow` replay smoke (explicit
# `--fidelity packet` must stay byte-identical to the default).
# --quick also smoke-tests composed paths: a 2-stage `--path` replay at
# packet and flow fidelity, plus a legacy schema-1 artifact replayed
# byte-identically to its schema-2 default.
# --quick also smoke-tests streaming ingest: a 3-chunk `ibox ingest
# append` + `finalize` against the live daemon, asserting the fitted
# lineage version replays byte-identically to a one-shot fit and that
# bare-id replays pin to the latest version.
# --perf additionally runs the release `perf`, `trace`, `infer`,
# `flow`, `path`, and `ingest` binaries in quick mode and fails on a
# regression vs the committed BENCH_perf.json / BENCH_trace.json /
# BENCH_infer.json / BENCH_flow.json / BENCH_path.json /
# BENCH_ingest.json.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# Gate: the typed OptSpec/RunSpec APIs replaced these entry points — fail
# fast if an untyped variant creeps back in.
gate() {
    local pattern="$1" where="$2" why="$3"
    if grep -rn --include='*.rs' -E "$pattern" "$where" > /dev/null 2>&1; then
        echo "FAIL: $why" >&2
        grep -rn --include='*.rs' -E "$pattern" "$where" >&2
        exit 1
    fi
}
gate 'const FLAGS' crates/cli \
    "ad-hoc FLAGS table reintroduced in the CLI — declare options in the OptSpec tables (crates/cli/src/commands.rs)"
gate '[^_a-z](ensemble_test|instance_test|realism_test|generate_paired_datasets|generate_dataset)\(' crates/bench \
    "serial entry point in a bench binary — use the _jobs variant routed through ibox-runner"
# The recurrent hot loops must stay on the out-param workspace kernels:
# the allocating matvec/matvec_t wrappers allocate a fresh Vec per call.
gate '\.matvec\(' crates/ml/src/lstm.rs \
    "allocating .matvec( in the LSTM hot path — use matvec_into/matvec_acc with a workspace buffer"
gate '\.matvec_t\(' crates/ml/src/lstm.rs \
    "allocating .matvec_t( in the LSTM hot path — use matvec_t_into with a workspace buffer"
gate '\.matvec\(' crates/ml/src/gru.rs \
    "allocating .matvec( in the GRU hot path — use matvec_into/matvec_acc with a workspace buffer"
gate '\.matvec_t\(' crates/ml/src/gru.rs \
    "allocating .matvec_t( in the GRU hot path — use matvec_t_into with a workspace buffer"
# The PathModel split: fits go through fit_model/FitCache (counted,
# cached, serializable), never through the concrete fit entry points.
gate '(IBoxNet|StatisticalLossModel)::fit' crates/cli \
    "direct model fit in the CLI — route through ibox::fit_model / FitCache so fits are counted and cached"
gate '(IBoxNet|StatisticalLossModel)::fit' crates/core/src/abtest.rs \
    "direct model fit in the A/B harness — route through ibox::fit_model / FitCache"
gate '(IBoxNet|StatisticalLossModel)::fit' crates/core/src/batch.rs \
    "direct model fit in the batch executor — route through ibox::fit_model / FitCache"
# Replay inference is batched: core drives ML models through an
# InferenceSession (step_batch), never per-packet step_inference — the
# deprecated shim allocates a throwaway one-slot session per call.
gate 'step_inference\(' crates/core/src \
    "per-packet step_inference in a core hot path — drive an ibox_ml::InferenceSession via step_batch instead"
# Timing in the serving/runner layers goes through the obs facade so it
# always lands in metrics/traces — no invisible raw clock reads.
gate 'Instant::now\(' crates/serve/src \
    "raw Instant::now() timing in ibox-serve — use ibox_obs::Stopwatch or span! so the timing is observable"
gate 'Instant::now\(' crates/runner/src \
    "raw Instant::now() timing in ibox-runner — use ibox_obs::Stopwatch or span! so the timing is observable"
# The ingest runtime must stay on the O(chunk) online fold — re-running
# the batch estimators over the accumulated trace is exactly what the
# crate exists to avoid. Comments and the #[cfg(test)] bit-identity
# oracles (which *compare* against the batch path) are exempt.
for f in crates/ingest/src/*.rs; do
    if awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
        | grep -E '(StaticParams|CrossTrafficEstimate)::estimate\(' > /dev/null; then
        echo "FAIL: batch estimator call in ingest runtime code ($f) — fold through OnlineStaticParams / OnlineCrossTraffic" >&2
        awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
            | grep -nE '(StaticParams|CrossTrafficEstimate)::estimate\(' >&2
        exit 1
    fi
done
# The chained-path refactor: outside the simulator, paths are composed
# through PathSpec (PathEmulator::from_spec). Direct single-bottleneck
# construction is a crates/sim implementation detail.
if grep -rn --include='*.rs' --exclude-dir=sim -E 'PathEmulator::new\(' crates tests examples > /dev/null 2>&1; then
    echo "FAIL: direct PathEmulator::new( outside crates/sim — build a PathSpec and use PathEmulator::from_spec" >&2
    grep -rn --include='*.rs' --exclude-dir=sim -E 'PathEmulator::new\(' crates tests examples >&2
    exit 1
fi

run cargo build --release --workspace --offline
run cargo test -q --workspace --offline
run cargo clippy --workspace --offline -- -D warnings
run cargo fmt --check

if [[ "${1:-}" == "--quick" ]]; then
    echo "==> batch smoke: 4 specs at --jobs 2"
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    cat > "$tmp/batch.json" << 'EOF'
{
  "jobs": 1,
  "runs": [
    {"id": "smoke/iboxnet", "source": {"Synth": {"profile": "ethernet", "protocol": "cubic", "seed": 70}}, "protocol": "cubic", "duration_s": 4.0, "seed": 1, "model": "IBoxNet"},
    {"id": "smoke/nocross", "source": {"Synth": {"profile": "ethernet", "protocol": "cubic", "seed": 71}}, "protocol": "cubic", "duration_s": 4.0, "seed": 2, "model": "IBoxNetNoCross"},
    {"id": "smoke/statloss", "source": {"Synth": {"profile": "ethernet", "protocol": "cubic", "seed": 72}}, "protocol": "cubic", "duration_s": 4.0, "seed": 3, "model": "StatisticalLoss"},
    {"id": "smoke/reorder", "source": {"Synth": {"profile": "ethernet", "protocol": "cubic", "seed": 73}}, "protocol": "cubic", "duration_s": 4.0, "seed": 4, "model": "IBoxNetReorder"},
    {"id": "smoke/iboxml", "source": {"Synth": {"profile": "ethernet", "protocol": "cubic", "seed": 70}}, "protocol": "cubic", "duration_s": 4.0, "seed": 5, "model": {"IBoxMl": {"hidden_sizes": [8], "epochs": 2, "tbptt": 32}}}
  ]
}
EOF
    run ./target/release/ibox batch "$tmp/batch.json" --jobs 2 --model-cache "$tmp/cache" -o "$tmp/results.json"
    test -s "$tmp/results.json" || { echo "FAIL: batch smoke wrote no results" >&2; exit 1; }
    grep -q 'iBoxML' "$tmp/results.json" || { echo "FAIL: batch smoke missing the iBoxML record" >&2; exit 1; }
    echo "batch smoke passed"

    echo "==> artifact smoke: fit, save, reload, replay byte-identically"
    run ./target/release/ibox synth --profile ethernet --protocol cubic --duration 4 --seed 81 -o "$tmp/train.json"
    run ./target/release/ibox fit "$tmp/train.json" -o "$tmp/model.json"
    run ./target/release/ibox replay "$tmp/model.json" --protocol vegas --duration 4 --seed 9 -o "$tmp/replay1.json" | tee "$tmp/log1.txt"
    run ./target/release/ibox replay "$tmp/model.json" --protocol vegas --duration 4 --seed 9 -o "$tmp/replay2.json" | tee "$tmp/log2.txt"
    cmp "$tmp/replay1.json" "$tmp/replay2.json" \
        || { echo "FAIL: a saved-then-loaded model did not replay byte-identically" >&2; exit 1; }
    diff <(grep 'trace digest' "$tmp/log1.txt") <(grep 'trace digest' "$tmp/log2.txt") \
        || { echo "FAIL: replay digests diverged across reloads" >&2; exit 1; }
    echo "artifact smoke passed"

    echo "==> fidelity smoke: --fidelity flow replays, packet stays the default"
    run ./target/release/ibox replay "$tmp/model.json" --protocol cubic --duration 4 --seed 9 -o "$tmp/replay-pkt.json"
    run ./target/release/ibox replay "$tmp/model.json" --protocol cubic --duration 4 --seed 9 --fidelity packet -o "$tmp/replay-pkt2.json"
    cmp "$tmp/replay-pkt.json" "$tmp/replay-pkt2.json" \
        || { echo "FAIL: explicit --fidelity packet differs from the default replay" >&2; exit 1; }
    run ./target/release/ibox replay "$tmp/model.json" --protocol cubic --duration 4 --seed 9 --fidelity flow -o "$tmp/replay-flow.json"
    grep -q '"records"' "$tmp/replay-flow.json" \
        || { echo "FAIL: flow-fidelity replay wrote no trace records" >&2; exit 1; }
    # Same schema, different engine: flow output must be a real trace
    # and must not be the packet engine's bytes.
    cmp -s "$tmp/replay-pkt.json" "$tmp/replay-flow.json" \
        && { echo "FAIL: --fidelity flow returned the packet engine's bytes" >&2; exit 1; }
    echo "fidelity smoke passed"

    echo "==> path smoke: 2-stage composed replay at packet and flow fidelity"
    cat > "$tmp/chain.json" << 'EOF'
[
  {"rate_bps": 12e6, "prop_delay_ms": 10, "buffer_bytes": 150000},
  {"rate_bps": 40e6, "prop_delay_ms": 4, "buffer_bytes": 300000}
]
EOF
    run ./target/release/ibox replay "$tmp/model.json" --protocol cubic --duration 4 --seed 9 \
        --path "$tmp/chain.json" -o "$tmp/replay-chain-pkt.json"
    grep -q '"records"' "$tmp/replay-chain-pkt.json" \
        || { echo "FAIL: composed-path replay wrote no trace records" >&2; exit 1; }
    # The chain reshapes the replay: its bytes must differ from the flat
    # single-bottleneck replay of the same (protocol, duration, seed).
    cmp -s "$tmp/replay-pkt.json" "$tmp/replay-chain-pkt.json" \
        && { echo "FAIL: --path replay returned the single-bottleneck bytes" >&2; exit 1; }
    run ./target/release/ibox replay "$tmp/model.json" --protocol cubic --duration 4 --seed 9 \
        --path "$tmp/chain.json" -o "$tmp/replay-chain-pkt2.json"
    cmp "$tmp/replay-chain-pkt.json" "$tmp/replay-chain-pkt2.json" \
        || { echo "FAIL: composed-path replay is not deterministic" >&2; exit 1; }
    run ./target/release/ibox replay "$tmp/model.json" --protocol cubic --duration 4 --seed 9 \
        --path "$tmp/chain.json" --fidelity flow -o "$tmp/replay-chain-flow.json"
    grep -q '"records"' "$tmp/replay-chain-flow.json" \
        || { echo "FAIL: flow-fidelity composed replay wrote no trace records" >&2; exit 1; }
    cmp -s "$tmp/replay-chain-pkt.json" "$tmp/replay-chain-flow.json" \
        && { echo "FAIL: flow fidelity over the chain returned the packet engine's bytes" >&2; exit 1; }
    # Legacy contract: a schema-1 single-bottleneck artifact replays
    # byte-identically to the schema-2 default.
    sed 's/"schema":2/"schema":1/' "$tmp/model.json" > "$tmp/model-v1.json"
    run ./target/release/ibox replay "$tmp/model-v1.json" --protocol vegas --duration 4 --seed 9 \
        -o "$tmp/replay-v1.json"
    cmp "$tmp/replay1.json" "$tmp/replay-v1.json" \
        || { echo "FAIL: a schema-1 artifact did not replay byte-identically to schema 2" >&2; exit 1; }
    echo "path smoke passed"

    echo "==> serve smoke: fit + replay over HTTP, byte-identical to offline replay"
    ./target/release/ibox serve --addr 127.0.0.1:0 --jobs 2 --model-cache "$tmp/mcache" \
        > "$tmp/serve.log" 2>&1 &
    serve_pid=$!
    base=""
    for _ in $(seq 1 100); do
        base="$(sed -n 's|^listening on \(http://.*\)$|\1|p' "$tmp/serve.log" | head -1)"
        [[ -n "$base" ]] && break
        sleep 0.1
    done
    [[ -n "$base" ]] || { echo "FAIL: serve never printed its address" >&2; cat "$tmp/serve.log" >&2; kill "$serve_pid"; exit 1; }

    # Fit the artifact-smoke training trace over HTTP (synchronously).
    printf '{"wait": true, "model": "IBoxNet", "trace": %s}' "$(cat "$tmp/train.json")" > "$tmp/fit-req.json"
    run ./target/release/ibox call --data "$tmp/fit-req.json" "$base/fit" -o "$tmp/fit-resp.json"
    model_id="$(sed -n 's/.*"model":[[:space:]]*"\([^"]*\)".*/\1/p' "$tmp/fit-resp.json")"
    [[ -n "$model_id" ]] || { echo "FAIL: /fit answered without a model id" >&2; cat "$tmp/fit-resp.json" >&2; kill "$serve_pid"; exit 1; }
    run ./target/release/ibox call "$base/models" -o "$tmp/models.json"
    grep -q "$model_id" "$tmp/models.json" \
        || { echo "FAIL: fitted model $model_id missing from /models" >&2; kill "$serve_pid"; exit 1; }

    # Replay over HTTP vs the offline CLI replay of the same registry
    # artifact: the bytes must be identical.
    printf '{"model": "%s", "protocol": "vegas", "duration_s": 4, "seed": 9}' "$model_id" > "$tmp/replay-req.json"
    run ./target/release/ibox call --data "$tmp/replay-req.json" "$base/replay" -o "$tmp/replay-http.json"
    run ./target/release/ibox replay "$tmp/mcache/${model_id}.artifact.json" \
        --protocol vegas --duration 4 --seed 9 -o "$tmp/replay-offline.json"
    cmp "$tmp/replay-http.json" "$tmp/replay-offline.json" \
        || { echo "FAIL: HTTP replay bytes differ from the offline replay" >&2; kill "$serve_pid"; exit 1; }

    echo "==> trace smoke: request-scoped causal trace + prometheus exposition"
    # A fresh synth source (not train.json, whose model is already
    # registered) so the fit-cache and model-fit phases actually run.
    tid="00000000deadbeef"
    printf '{"wait": true, "model": "IBoxNet", "synth": {"profile": "ethernet", "protocol": "cubic", "seed": 91, "duration_s": 4}}' \
        > "$tmp/trace-fit-req.json"
    run ./target/release/ibox call --data "$tmp/trace-fit-req.json" --trace-id "$tid" "$base/fit" > /dev/null
    run ./target/release/ibox call "$base/trace/$tid" -o "$tmp/trace.json"
    for span in request.fit fit-cache model-fit; do
        grep -q "\"$span\"" "$tmp/trace.json" \
            || { echo "FAIL: span $span missing from /trace/$tid" >&2; cat "$tmp/trace.json" >&2; kill "$serve_pid"; exit 1; }
    done
    run ./target/release/ibox call "$base/trace/$tid?format=chrome" -o "$tmp/trace-chrome.json"
    grep -q '"traceEvents"' "$tmp/trace-chrome.json" \
        || { echo "FAIL: chrome export missing traceEvents" >&2; kill "$serve_pid"; exit 1; }
    run ./target/release/ibox call "$base/metrics?format=prometheus" -o "$tmp/metrics.prom"
    grep -q '^# TYPE ' "$tmp/metrics.prom" \
        || { echo "FAIL: prometheus exposition missing TYPE lines" >&2; kill "$serve_pid"; exit 1; }
    echo "trace smoke passed"

    echo "==> ingest smoke: 3-chunk streaming append, finalize, version-pinned replay"
    run ./target/release/ibox ingest append "$tmp/train.json" --url "$base" --session smoke --chunks 3
    run ./target/release/ibox call "$base/ingest/sessions/smoke" -o "$tmp/ingest-status.json"
    grep -q '"chunks"' "$tmp/ingest-status.json" \
        || { echo "FAIL: ingest session status missing chunk count" >&2; kill "$serve_pid"; exit 1; }
    run ./target/release/ibox ingest finalize --url "$base" --session smoke
    run ./target/release/ibox call "$base/models/smoke/versions" -o "$tmp/ingest-versions.json"
    grep -q '"smoke-v1"' "$tmp/ingest-versions.json" \
        || { echo "FAIL: finalized session missing from the model lineage" >&2; cat "$tmp/ingest-versions.json" >&2; kill "$serve_pid"; exit 1; }
    # Replaying the bare session id resolves to the latest version; an
    # explicit pin of that version must answer the same bytes, and both
    # must match the one-shot HTTP fit of the same training trace.
    printf '{"model": "smoke", "protocol": "vegas", "duration_s": 4, "seed": 9}' > "$tmp/ingest-replay-req.json"
    run ./target/release/ibox call --data "$tmp/ingest-replay-req.json" "$base/replay" -o "$tmp/ingest-replay-latest.json"
    printf '{"model": "smoke-v1", "protocol": "vegas", "duration_s": 4, "seed": 9}' > "$tmp/ingest-replay-pin-req.json"
    run ./target/release/ibox call --data "$tmp/ingest-replay-pin-req.json" "$base/replay" -o "$tmp/ingest-replay-pinned.json"
    cmp "$tmp/ingest-replay-latest.json" "$tmp/ingest-replay-pinned.json" \
        || { echo "FAIL: latest-version replay differs from the pinned-version replay" >&2; kill "$serve_pid"; exit 1; }
    cmp "$tmp/ingest-replay-latest.json" "$tmp/replay-http.json" \
        || { echo "FAIL: streamed-ingest fit did not replay byte-identically to the one-shot fit" >&2; kill "$serve_pid"; exit 1; }
    echo "ingest smoke passed"

    run ./target/release/ibox call --post "$base/shutdown" > /dev/null
    wait "$serve_pid" \
        || { echo "FAIL: serve exited nonzero after graceful shutdown" >&2; exit 1; }
    test -f "$tmp/mcache/serve.manifest.json" \
        || { echo "FAIL: serve wrote no run manifest on exit" >&2; exit 1; }
    echo "serve smoke passed"
fi

if [[ "${1:-}" == "--perf" || "${2:-}" == "--perf" ]]; then
    echo "==> perf smoke: quick benchmarks vs committed BENCH_perf.json"
    # Run from a scratch dir: the binary writes a fresh BENCH_perf.json to
    # its cwd, and the committed baseline must stay untouched.
    repo="$PWD"
    perf_tmp="$(mktemp -d)"
    # ${tmp:+...}: also clean the --quick scratch dir if that block ran
    # (a second trap would otherwise replace its cleanup).
    trap 'rm -rf ${tmp:+"$tmp"} "$perf_tmp"' EXIT
    (cd "$perf_tmp" && run "$repo/target/release/perf" --quick --baseline "$repo/BENCH_perf.json")
    echo "perf smoke passed"
    echo "==> trace overhead smoke: quick benchmarks vs committed BENCH_trace.json"
    (cd "$perf_tmp" && run "$repo/target/release/trace" --quick --baseline "$repo/BENCH_trace.json")
    echo "trace overhead smoke passed"
    echo "==> inference smoke: quick benchmarks vs committed BENCH_infer.json"
    (cd "$perf_tmp" && run "$repo/target/release/infer" --quick --baseline "$repo/BENCH_infer.json")
    echo "inference smoke passed"
    echo "==> fidelity smoke: quick flow-vs-packet bench vs committed BENCH_flow.json"
    (cd "$perf_tmp" && run "$repo/target/release/flow" --quick --baseline "$repo/BENCH_flow.json")
    echo "fidelity bench smoke passed"
    echo "==> path smoke: quick per-stage-count bench vs committed BENCH_path.json"
    (cd "$perf_tmp" && run "$repo/target/release/path" --quick --baseline "$repo/BENCH_path.json")
    echo "path bench smoke passed"
    echo "==> ingest smoke: quick online-vs-batch refit bench vs committed BENCH_ingest.json"
    (cd "$perf_tmp" && run "$repo/target/release/ingest" --quick --baseline "$repo/BENCH_ingest.json")
    echo "ingest bench smoke passed"
fi

echo "all checks passed"
