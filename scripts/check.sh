#!/usr/bin/env bash
# Local gate: everything CI would run, offline.
#   scripts/check.sh [--quick] [--perf]
#
# --quick additionally smoke-tests the batch runner end to end: a 4-spec
# batch file executed through the release `ibox batch --jobs 2`.
# --perf additionally runs the release `perf` binary in quick mode and
# fails on a >20% throughput regression vs the committed BENCH_perf.json.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# Gate: the typed OptSpec/RunSpec APIs replaced these entry points — fail
# fast if an untyped variant creeps back in.
gate() {
    local pattern="$1" where="$2" why="$3"
    if grep -rn --include='*.rs' -E "$pattern" "$where" > /dev/null 2>&1; then
        echo "FAIL: $why" >&2
        grep -rn --include='*.rs' -E "$pattern" "$where" >&2
        exit 1
    fi
}
gate 'const FLAGS' crates/cli \
    "ad-hoc FLAGS table reintroduced in the CLI — declare options in the OptSpec tables (crates/cli/src/commands.rs)"
gate '[^_a-z](ensemble_test|instance_test|realism_test|generate_paired_datasets|generate_dataset)\(' crates/bench \
    "serial entry point in a bench binary — use the _jobs variant routed through ibox-runner"
# The recurrent hot loops must stay on the out-param workspace kernels:
# the allocating matvec/matvec_t wrappers allocate a fresh Vec per call.
gate '\.matvec\(' crates/ml/src/lstm.rs \
    "allocating .matvec( in the LSTM hot path — use matvec_into/matvec_acc with a workspace buffer"
gate '\.matvec_t\(' crates/ml/src/lstm.rs \
    "allocating .matvec_t( in the LSTM hot path — use matvec_t_into with a workspace buffer"
gate '\.matvec\(' crates/ml/src/gru.rs \
    "allocating .matvec( in the GRU hot path — use matvec_into/matvec_acc with a workspace buffer"
gate '\.matvec_t\(' crates/ml/src/gru.rs \
    "allocating .matvec_t( in the GRU hot path — use matvec_t_into with a workspace buffer"

run cargo build --release --workspace --offline
run cargo test -q --workspace --offline
run cargo clippy --workspace --offline -- -D warnings
run cargo fmt --check

if [[ "${1:-}" == "--quick" ]]; then
    echo "==> batch smoke: 4 specs at --jobs 2"
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    cat > "$tmp/batch.json" << 'EOF'
{
  "jobs": 1,
  "runs": [
    {"id": "smoke/iboxnet", "source": {"Synth": {"profile": "ethernet", "protocol": "cubic", "seed": 70}}, "protocol": "cubic", "duration_s": 4.0, "seed": 1, "model": "IBoxNet"},
    {"id": "smoke/nocross", "source": {"Synth": {"profile": "ethernet", "protocol": "cubic", "seed": 71}}, "protocol": "cubic", "duration_s": 4.0, "seed": 2, "model": "IBoxNetNoCross"},
    {"id": "smoke/statloss", "source": {"Synth": {"profile": "ethernet", "protocol": "cubic", "seed": 72}}, "protocol": "cubic", "duration_s": 4.0, "seed": 3, "model": "StatisticalLoss"},
    {"id": "smoke/reorder", "source": {"Synth": {"profile": "ethernet", "protocol": "cubic", "seed": 73}}, "protocol": "cubic", "duration_s": 4.0, "seed": 4, "model": "IBoxNetReorder"}
  ]
}
EOF
    run ./target/release/ibox batch "$tmp/batch.json" --jobs 2 -o "$tmp/results.json"
    test -s "$tmp/results.json" || { echo "FAIL: batch smoke wrote no results" >&2; exit 1; }
    echo "batch smoke passed"
fi

if [[ "${1:-}" == "--perf" || "${2:-}" == "--perf" ]]; then
    echo "==> perf smoke: quick benchmarks vs committed BENCH_perf.json"
    # Run from a scratch dir: the binary writes a fresh BENCH_perf.json to
    # its cwd, and the committed baseline must stay untouched.
    repo="$PWD"
    perf_tmp="$(mktemp -d)"
    # ${tmp:+...}: also clean the --quick scratch dir if that block ran
    # (a second trap would otherwise replace its cleanup).
    trap 'rm -rf ${tmp:+"$tmp"} "$perf_tmp"' EXIT
    (cd "$perf_tmp" && run "$repo/target/release/perf" --quick --baseline "$repo/BENCH_perf.json")
    echo "perf smoke passed"
fi

echo "all checks passed"
