#!/usr/bin/env bash
# Local gate: everything CI would run, offline.
#   scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test -q --workspace --offline
run cargo clippy --workspace --offline -- -D warnings
run cargo fmt --check

echo "all checks passed"
