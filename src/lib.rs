//! `ibox-suite` — workspace-root package that hosts the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/`.
//!
//! The library itself re-exports the member crates for convenience so that
//! examples can `use ibox_suite::prelude::*`.

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use ibox::{self};
    pub use ibox_cc as cc;
    pub use ibox_ml as ml;
    pub use ibox_serve as serve;
    pub use ibox_sim as sim;
    pub use ibox_stats as stats;
    pub use ibox_testbed as testbed;
    pub use ibox_trace as trace;
}
