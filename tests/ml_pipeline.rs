//! Integration tests for the ML side: iBoxML and the melded reordering
//! models over real simulator traces.

use ibox::iboxml::{IBoxMl, IBoxMlConfig};
use ibox::meld::discovery::discover;
use ibox::meld::reorder::{augment_with_reordering, NaiveRandom, ReorderLinear};
use ibox::IBoxNet;
use ibox_cc::Cubic;
use ibox_ml::TrainConfig;
use ibox_sim::{PathConfig, PathEmulator, ReorderCfg, SimTime};
use ibox_testbed::pantheon::generate_dataset;
use ibox_testbed::Profile;
use ibox_trace::metrics::{delay_percentile_ms, overall_reordering_rate};
use ibox_trace::FlowTrace;

fn quick_ml_cfg() -> IBoxMlConfig {
    IBoxMlConfig {
        hidden_sizes: vec![16],
        with_cross_traffic: false,
        known_params: None,
        train: TrainConfig {
            epochs: 6,
            lr: 5e-3,
            tbptt: 48,
            clip: 5.0,
            loss_weight: 0.2,
            delay_weight: 1.0,
            ..Default::default()
        },
        seed: 5,
    }
}

fn fixed_path_traces(n: usize, secs: u64) -> Vec<FlowTrace> {
    (0..n)
        .map(|i| {
            let emu = PathEmulator::from_spec(
                ibox_sim::PathSpec::single(PathConfig::simple(
                    6e6,
                    SimTime::from_millis(25),
                    80_000,
                )),
                SimTime::from_secs(secs),
            )
            .with_name("fixed");
            emu.run_sender(Box::new(Cubic::new()), "m", 300 + i as u64)
                .traces
                .into_iter()
                .next()
                .unwrap()
                .normalized()
        })
        .collect()
}

/// iBoxML learns the delay regime of a path and transfers to held-out
/// traces of the same path.
#[test]
fn iboxml_transfers_to_held_out_traces() {
    let traces = fixed_path_traces(4, 8);
    let model = IBoxMl::fit(&traces[..3], quick_ml_cfg());
    let pred = model.predict_trace(&traces[3]);
    let p50_gt = delay_percentile_ms(&traces[3], 0.5).unwrap();
    let p50_ml = delay_percentile_ms(&pred, 0.5).unwrap();
    assert!(p50_ml > 0.4 * p50_gt && p50_ml < 2.5 * p50_gt, "medians: gt {p50_gt} vs ml {p50_ml}");
    // The send pattern is replayed exactly.
    assert_eq!(pred.len(), traces[3].len());
}

/// The discovery → augmentation loop closes: 'a' is missing from iBoxNet
/// output and restored by the learned reordering model.
#[test]
fn discovery_and_repair_loop() {
    let duration = SimTime::from_secs(12);
    let gt = generate_dataset(Profile::IndiaCellular, "cubic", 4, duration, 888);
    let sims: Vec<FlowTrace> = gt
        .traces
        .iter()
        .enumerate()
        .map(|(i, t)| IBoxNet::fit(t).simulate("cubic", duration, 30 + i as u64))
        .collect();

    // Before: 'a' missing.
    let before = discover(&gt.traces, &sims);
    assert!(
        before.missing_unigrams.iter().any(|(p, _)| p == "a"),
        "reordering must be discovered as missing: {:?}",
        before.missing_unigrams
    );

    // After augmentation: 'a' restored at a plausible rate.
    let predictor = ReorderLinear::fit(&gt.traces);
    let augmented: Vec<FlowTrace> = sims
        .iter()
        .enumerate()
        .map(|(i, t)| augment_with_reordering(t, &predictor, 60 + i as u64))
        .collect();
    let after = discover(&gt.traces, &augmented);
    assert!(
        !after.missing_unigrams.iter().any(|(p, _)| p == "a"),
        "'a' should be restored: {:?}",
        after.missing_unigrams
    );
}

/// The naive-random ablation matches length-1 rates but the learned model
/// is what the figures use; both must land in the right decade.
#[test]
fn reorder_rates_land_in_the_right_decade() {
    let mut path = PathConfig::simple(7e6, SimTime::from_millis(25), 90_000);
    path.reorder = Some(ReorderCfg {
        probability: 0.02,
        extra_min: SimTime::from_millis(2),
        extra_max: SimTime::from_millis(8),
    });
    let gt: Vec<FlowTrace> = (0..2)
        .map(|i| {
            PathEmulator::from_spec(
                ibox_sim::PathSpec::single(path.clone()),
                SimTime::from_secs(12),
            )
            .run_sender(Box::new(Cubic::new()), "m", i)
            .traces
            .into_iter()
            .next()
            .unwrap()
            .normalized()
        })
        .collect();
    let base = PathEmulator::from_spec(
        ibox_sim::PathSpec::single(PathConfig::simple(7e6, SimTime::from_millis(25), 90_000)),
        SimTime::from_secs(12),
    )
    .run_sender(Box::new(Cubic::new()), "m", 9)
    .traces
    .into_iter()
    .next()
    .unwrap()
    .normalized();

    let target = gt.iter().map(overall_reordering_rate).sum::<f64>() / gt.len() as f64;
    for (name, rate) in [
        ("naive", {
            let p = NaiveRandom::fit(&gt);
            overall_reordering_rate(&augment_with_reordering(&base, &p, 1))
        }),
        ("linear", {
            let p = ReorderLinear::fit(&gt);
            overall_reordering_rate(&augment_with_reordering(&base, &p, 1))
        }),
    ] {
        assert!(
            rate > 0.1 * target && rate < 10.0 * target,
            "{name}: rate {rate} vs target {target}"
        );
    }
}

/// iBoxML's loss head and the trace replay interact correctly: predicted
/// traces may mark losses, and delays stay physical.
#[test]
fn iboxml_predictions_are_physical() {
    let traces = fixed_path_traces(2, 6);
    let model = IBoxMl::fit(&traces[..1], quick_ml_cfg());
    let pred = model.predict_trace(&traces[1]);
    for r in pred.delivered() {
        let d = r.delay_secs().unwrap();
        assert!(d > 0.0 && d < 10.0, "nonphysical delay {d}");
    }
}
