//! Cross-crate integration tests: the full iBox pipeline, ground truth to
//! counterfactual, exercised end to end.

use ibox::abtest::{ensemble_test, ModelKind};
use ibox::{IBoxNet, StatisticalLossModel};
use ibox_cc::Cubic;
use ibox_sim::{CrossTrafficCfg, PathConfig, PathEmulator, SimTime};
use ibox_testbed::pantheon::generate_paired_datasets;
use ibox_testbed::Profile;
use ibox_trace::metrics::{avg_rate_mbps, delay_percentile_ms};

/// The headline pipeline: measure Cubic on a known path, fit iBoxNet, and
/// check every estimated parameter against the truth.
#[test]
fn estimation_pipeline_recovers_known_path() {
    let duration = SimTime::from_secs(20);
    let emu = PathEmulator::from_spec(
        ibox_sim::PathSpec::single(PathConfig::simple(8e6, SimTime::from_millis(30), 120_000)),
        duration,
    )
    .with_name("known")
    .with_cross_traffic(CrossTrafficCfg::cbr(
        2e6,
        SimTime::from_secs(5),
        SimTime::from_secs(15),
    ));
    let gt = emu.run_sender(Box::new(Cubic::new()), "m", 1).trace("m").unwrap().normalized();
    let model = IBoxNet::fit(&gt);

    assert!(
        (model.params.bandwidth_bps - 8e6).abs() / 8e6 < 0.05,
        "bandwidth {}",
        model.params.bandwidth_bps
    );
    assert!(
        (model.params.prop_delay.as_millis_f64() - 31.4).abs() < 1.5,
        "prop delay {}",
        model.params.prop_delay
    );
    assert!(
        (90_000..=140_000).contains(&model.params.buffer_bytes),
        "buffer {}",
        model.params.buffer_bytes
    );
    // Cross traffic: 2.5 MB true; conservative lower bound within reach.
    let est = model.cross.total_bytes();
    assert!((1_200_000.0..=3_200_000.0).contains(&est), "cross-traffic estimate {est}");
    // And localized in the right window.
    let inside = model.cross.bytes_between(4.0, 16.0);
    assert!(inside > 0.8 * est, "CT should sit in [5,15]s: {inside} of {est}");
}

/// The counterfactual: Vegas over the fitted model matches Vegas on the
/// real network it never saw.
#[test]
fn counterfactual_vegas_matches_reality() {
    let duration = SimTime::from_secs(20);
    let emu = PathEmulator::from_spec(
        ibox_sim::PathSpec::single(PathConfig::simple(8e6, SimTime::from_millis(30), 120_000)),
        duration,
    )
    .with_cross_traffic(CrossTrafficCfg::cbr(
        2e6,
        SimTime::from_secs(5),
        SimTime::from_secs(15),
    ));
    let cubic_gt = emu.run_sender(Box::new(Cubic::new()), "m", 1).trace("m").unwrap().normalized();
    let vegas_gt =
        emu.run_sender(ibox_cc::by_name("vegas").unwrap(), "m", 1).trace("m").unwrap().normalized();

    let model = IBoxNet::fit(&cubic_gt);
    let vegas_sim = model.simulate("vegas", duration, 9);

    let (r_gt, r_sim) = (avg_rate_mbps(&vegas_gt), avg_rate_mbps(&vegas_sim));
    assert!((r_gt - r_sim).abs() / r_gt < 0.2, "rates {r_gt} vs {r_sim}");
    let d_gt = delay_percentile_ms(&vegas_gt, 0.95).unwrap();
    let d_sim = delay_percentile_ms(&vegas_sim, 0.95).unwrap();
    assert!((d_gt - d_sim).abs() / d_gt < 0.3, "p95 delays {d_gt} vs {d_sim}");
}

/// Profiles are portable artifacts: JSON roundtrip preserves behaviour.
#[test]
fn profile_roundtrip_preserves_simulation() {
    let duration = SimTime::from_secs(10);
    let emu = PathEmulator::from_spec(
        ibox_sim::PathSpec::single(PathConfig::simple(6e6, SimTime::from_millis(25), 80_000)),
        duration,
    );
    let gt = emu.run_sender(Box::new(Cubic::new()), "m", 2).trace("m").unwrap().normalized();
    let model = IBoxNet::fit(&gt);
    let restored = IBoxNet::from_json(&model.to_json()).unwrap();
    assert_eq!(model.simulate("reno", duration, 5), restored.simulate("reno", duration, 5));
}

/// The Fig. 3 ordering at miniature scale: full iBoxNet matches the
/// treatment's delay distribution at least as well as the statistical-loss
/// baseline, measured by the KS statistic.
#[test]
fn iboxnet_beats_statistical_loss_baseline_on_delay() {
    let duration = SimTime::from_secs(10);
    let ds =
        generate_paired_datasets(Profile::IndiaCellular, &["cubic", "vegas"], 6, duration, 400);
    let full = ensemble_test(&ds[0], &ds[1], ModelKind::IBoxNet, duration, 2);
    let stat = ensemble_test(&ds[0], &ds[1], ModelKind::StatisticalLoss, duration, 2);
    assert!(
        full.ks_delay.b.statistic <= stat.ks_delay.b.statistic + 0.17,
        "full D={} vs statistical D={}",
        full.ks_delay.b.statistic,
        stat.ks_delay.b.statistic
    );
}

/// The statistical baseline reproduces the loss *rate* it calibrates on.
#[test]
fn statistical_baseline_is_loss_calibrated() {
    let duration = SimTime::from_secs(12);
    let mut path = PathConfig::simple(6e6, SimTime::from_millis(25), 80_000);
    path.random_loss = 0.02;
    let emu = PathEmulator::from_spec(ibox_sim::PathSpec::single(path), duration);
    let gt = emu.run_sender(Box::new(Cubic::new()), "m", 3).trace("m").unwrap().normalized();
    let model = StatisticalLossModel::fit(&gt);
    assert!((model.loss_rate - gt.loss_rate()).abs() < 1e-9);
    let sim = model.simulate("cubic", duration, 4);
    assert!(
        sim.loss_rate() > 0.5 * model.loss_rate,
        "sim loss {} vs calibrated {}",
        sim.loss_rate(),
        model.loss_rate
    );
}

/// The whole pantheon pipeline is deterministic end to end.
#[test]
fn pipeline_is_deterministic() {
    let duration = SimTime::from_secs(8);
    let run = || {
        let ds =
            generate_paired_datasets(Profile::IndiaCellular, &["cubic", "vegas"], 2, duration, 77);
        let model = IBoxNet::fit(&ds[0].traces[0]);
        model.simulate("vegas", duration, 5)
    };
    assert_eq!(run(), run());
}
