//! Property-based tests (proptest) on the simulator's and analytics'
//! invariants, with randomized configurations.

use proptest::prelude::*;

use ibox_sim::{CrossTrafficCfg, FixedRate, FixedWindow, PathConfig, PathEmulator, SimTime};
use ibox_stats::{ks_two_sample, Cdf, SaxConfig, SaxEncoder};
use ibox_trace::metrics::overall_reordering_rate;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Conservation: every sent packet resolves as delivered or lost, the
    /// trace length equals the sent count, and min delay is bounded below
    /// by propagation + one serialization time.
    #[test]
    fn simulator_conservation_and_delay_floor(
        rate_mbps in 2.0f64..20.0,
        delay_ms in 5u64..80,
        buffer_kb in 10u64..200,
        window in 4.0f64..128.0,
        seed in 0u64..1000,
    ) {
        let path = PathConfig::simple(
            rate_mbps * 1e6,
            SimTime::from_millis(delay_ms),
            buffer_kb * 1000,
        );
        let emu = PathEmulator::from_spec(ibox_sim::PathSpec::single(path), SimTime::from_secs(4));
        let out = emu.run_sender(Box::new(FixedWindow::new(window)), "p", seed);
        let stats = &out.flow_stats[0];
        prop_assert_eq!(stats.sent, stats.delivered + stats.lost);
        let trace = &out.traces[0];
        prop_assert_eq!(trace.len() as u64, stats.sent);

        let floor_ns = delay_ms * 1_000_000
            + (1400.0 * 8.0 / (rate_mbps * 1e6) * 1e9) as u64;
        if let Some(min) = trace.min_delay_ns() {
            prop_assert!(
                min + 1000 >= floor_ns,
                "min delay {} below physical floor {}",
                min,
                floor_ns
            );
        }
        // No reordering on a plain FIFO path.
        prop_assert_eq!(overall_reordering_rate(trace), 0.0);
    }

    /// Max queueing delay is bounded by the buffer drain time: delay ≤
    /// prop + (buffer + packet) / rate (+ slack for rounding).
    #[test]
    fn queueing_delay_bounded_by_buffer(
        rate_mbps in 2.0f64..12.0,
        buffer_kb in 10u64..120,
        send_factor in 1.1f64..3.0,
        seed in 0u64..1000,
    ) {
        let rate = rate_mbps * 1e6;
        let path = PathConfig::simple(rate, SimTime::from_millis(20), buffer_kb * 1000);
        let emu = PathEmulator::from_spec(ibox_sim::PathSpec::single(path), SimTime::from_secs(4));
        // Overdrive the link so the buffer pins.
        let out = emu.run_sender(Box::new(FixedRate::new(rate * send_factor)), "p", seed);
        let trace = &out.traces[0];
        let bound_secs = 0.020 + (buffer_kb as f64 * 1000.0 + 1400.0) * 8.0 / rate + 0.002;
        if let Some(max) = trace.max_delay_ns() {
            prop_assert!(
                (max as f64) / 1e9 <= bound_secs,
                "max delay {} exceeds buffer bound {}",
                max as f64 / 1e9,
                bound_secs
            );
        }
        // Overdriven link must drop.
        prop_assert!(trace.loss_rate() > 0.0);
    }

    /// Cross traffic can only reduce the main flow's delivered share.
    #[test]
    fn cross_traffic_never_helps(
        rate_mbps in 4.0f64..12.0,
        ct_frac in 0.3f64..0.9,
        seed in 0u64..1000,
    ) {
        let rate = rate_mbps * 1e6;
        let mk = |with_ct: bool| {
            let mut emu = PathEmulator::from_spec(ibox_sim::PathSpec::single(
                PathConfig::simple(rate, SimTime::from_millis(20), 60_000)),
                SimTime::from_secs(4),
            );
            if with_ct {
                emu = emu.with_cross_traffic(CrossTrafficCfg::cbr(
                    ct_frac * rate,
                    SimTime::ZERO,
                    SimTime::from_secs(4),
                ));
            }
            let out = emu.run_sender(Box::new(FixedWindow::new(256.0)), "p", seed);
            out.flow_stats[0].delivered
        };
        prop_assert!(mk(true) <= mk(false));
    }

    /// KS-test properties: D(x, x) = 0; D is symmetric; D ∈ [0, 1].
    #[test]
    fn ks_test_properties(
        a in prop::collection::vec(-1e3f64..1e3, 2..60),
        b in prop::collection::vec(-1e3f64..1e3, 2..60),
    ) {
        let self_test = ks_two_sample(&a, &a);
        prop_assert_eq!(self_test.statistic, 0.0);
        let ab = ks_two_sample(&a, &b);
        let ba = ks_two_sample(&b, &a);
        prop_assert!((ab.statistic - ba.statistic).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab.statistic));
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
    }

    /// Empirical CDFs are monotone, and quantile/eval agree at the sample
    /// points.
    #[test]
    fn cdf_is_monotone(sample in prop::collection::vec(-1e3f64..1e3, 1..80)) {
        let cdf = Cdf::new(&sample);
        let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let curve = cdf.curve(lo - 1.0, hi + 1.0, 20);
        for w in curve.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert_eq!(curve.last().unwrap().1, 1.0);
    }

    /// SAX encoding is monotone in the value: bigger inputs never get a
    /// smaller symbol, and negative values always map to 'a' in the
    /// reorder-aware variant.
    #[test]
    fn sax_reorder_aware_monotone(
        reference in prop::collection::vec(0.0f64..1e3, 8..100),
        probe in prop::collection::vec(-1e2f64..1e3, 2..50),
    ) {
        let enc = SaxEncoder::reorder_aware(SaxConfig::default(), &reference);
        let mut sorted = probe.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let symbols = enc.encode(&sorted);
        for w in symbols.windows(2) {
            prop_assert!(w[1] >= w[0], "symbols must be monotone");
        }
        for (v, s) in sorted.iter().zip(&symbols) {
            if *v < 0.0 {
                prop_assert_eq!(*s, 0, "negative values are 'a'");
            }
        }
    }
}
