//! Quickstart: the whole iBox loop in one file.
//!
//! 1. Run a real congestion-control protocol (Cubic) over a ground-truth
//!    network with hidden cross traffic, collecting its input-output trace
//!    — the only thing iBox ever sees.
//! 2. Fit an iBoxNet model `(b, d, B, C)` from that trace alone.
//! 3. Counterfactual: run a *different* protocol (Vegas) over the fitted
//!    model, and compare against Vegas on the real network.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ibox::IBoxNet;
use ibox_cc::{Cubic, Vegas};
use ibox_sim::{CrossTrafficCfg, PathConfig, PathEmulator, SimTime};
use ibox_trace::metrics::TraceMetrics;

fn main() {
    // --- 1. The "real" network: 8 Mbps, 30 ms, 120 KB buffer, plus a
    // 2 Mbps cross-traffic burst in the middle that iBox must discover.
    let duration = SimTime::from_secs(20);
    let real_network = PathEmulator::from_spec(
        ibox_sim::PathSpec::single(PathConfig::simple(8e6, SimTime::from_millis(30), 120_000)),
        duration,
    )
    .with_name("real-path")
    .with_cross_traffic(CrossTrafficCfg::cbr(
        2e6,
        SimTime::from_secs(5),
        SimTime::from_secs(15),
    ));

    println!("measuring cubic on the real network…");
    let out = real_network.run_sender(Box::new(Cubic::new()), "measure", 1);
    let cubic_trace = out.trace("measure").unwrap().normalized();
    println!(
        "  {} packets, {:.2} Mbps, p95 delay {:.1} ms, loss {:.2}%",
        cubic_trace.len(),
        TraceMetrics::of(&cubic_trace).avg_rate_mbps,
        TraceMetrics::of(&cubic_trace).p95_delay_ms,
        TraceMetrics::of(&cubic_trace).loss_pct,
    );

    // --- 2. Fit iBoxNet from the trace alone.
    let model = IBoxNet::fit(&cubic_trace);
    println!("\nfitted iBoxNet profile:");
    println!("  bandwidth  : {:.2} Mbps (true: 8.00)", model.params.bandwidth_bps / 1e6);
    println!(
        "  prop delay : {:.1} ms (true: 30.0 + serialization)",
        model.params.prop_delay.as_millis_f64()
    );
    println!("  buffer     : {} bytes (true: 120000)", model.params.buffer_bytes);
    println!(
        "  cross traffic recovered: {:.0} KB (true: 2 Mbps x 10 s = 2500 KB, lower bound)",
        model.cross.total_bytes() / 1e3
    );

    // --- 3. Counterfactual: Vegas over the fitted model vs. reality.
    println!("\ncounterfactual: vegas over the fitted model vs the real network");
    let vegas_sim = model.simulate("vegas", duration, 42);
    let vegas_real =
        real_network.run_sender(Box::new(Vegas::new()), "v", 1).trace("v").unwrap().normalized();
    let (m_sim, m_real) = (TraceMetrics::of(&vegas_sim), TraceMetrics::of(&vegas_real));
    println!("  metric          real       iBoxNet");
    println!("  rate (Mbps)     {:<10.2} {:.2}", m_real.avg_rate_mbps, m_sim.avg_rate_mbps);
    println!("  p95 delay (ms)  {:<10.1} {:.1}", m_real.p95_delay_ms, m_sim.p95_delay_ms);
    println!("  loss (%)        {:<10.2} {:.2}", m_real.loss_pct, m_sim.loss_pct);

    // The fitted profile is a shareable artifact (the paper's promised
    // "iBoxNet profiles").
    let json = model.to_json();
    println!("\nprofile serializes to {} bytes of JSON", json.len());
}
