//! Behaviour discovery and repair (§5.1): find what the simulator is
//! missing, then teach it.
//!
//! 1. Generate real-ish cellular traces (which reorder packets) and
//!    iBoxNet replays of them (which cannot reorder).
//! 2. SAX-encode inter-arrival differences and "diff" the motif tables —
//!    the reordering symbol `'a'` appears only in ground truth.
//! 3. Train the linear reordering predictor and graft reordering onto the
//!    iBoxNet output; re-run the diff.
//!
//! ```sh
//! cargo run --release --example behaviour_discovery
//! ```

use ibox::meld::discovery::discover;
use ibox::meld::reorder::{augment_with_reordering, ReorderLinear};
use ibox::IBoxNet;
use ibox_sim::SimTime;
use ibox_testbed::pantheon::generate_dataset;
use ibox_testbed::Profile;
use ibox_trace::metrics::overall_reordering_rate;

fn main() {
    let duration = SimTime::from_secs(15);
    println!("generating ground-truth cellular traces…");
    let gt = generate_dataset(Profile::IndiaCellular, "cubic", 5, duration, 321);

    println!("replaying each through a fitted iBoxNet…");
    let sims: Vec<_> = gt
        .traces
        .iter()
        .enumerate()
        .map(|(i, t)| IBoxNet::fit(t).simulate("cubic", duration, 60 + i as u64))
        .collect();

    let report = discover(&gt.traces, &sims);
    println!("\nbehaviours in ground truth but missing from iBoxNet:");
    for (p, f) in &report.missing_unigrams {
        println!("  symbol {p:?} at {:.2}% — {}", f * 100.0, describe(p));
    }
    for (p, f) in report.missing_bigrams.iter().take(5) {
        println!("  pattern {p:?} at {:.2}%", f * 100.0);
    }

    println!("\ntraining the linear reordering predictor and augmenting the sims…");
    let predictor = ReorderLinear::fit(&gt.traces);
    let augmented: Vec<_> = sims
        .iter()
        .enumerate()
        .map(|(i, t)| augment_with_reordering(t, &predictor, 90 + i as u64))
        .collect();

    let mean = |ts: &[ibox_trace::FlowTrace]| {
        ts.iter().map(overall_reordering_rate).sum::<f64>() / ts.len() as f64
    };
    println!("\noverall reordering rates:");
    println!("  ground truth      : {:.3}%", mean(&gt.traces) * 100.0);
    println!("  iBoxNet           : {:.3}%", mean(&sims) * 100.0);
    println!("  iBoxNet + linear  : {:.3}%", mean(&augmented) * 100.0);

    let after = discover(&gt.traces, &augmented);
    println!(
        "\nafter augmentation, 'a' is {} from the diff of missing behaviours",
        if after.missing_unigrams.iter().any(|(p, _)| p == "a") { "STILL MISSING" } else { "gone" }
    );
}

fn describe(symbol: &str) -> &'static str {
    match symbol {
        "a" => "negative inter-arrival difference, i.e. packet reordering",
        "b" => "near-zero positive inter-arrival difference",
        _ => "a coarser inter-arrival regime",
    }
}
