//! Train an iBoxML model end-to-end (§4): the pure-ML path simulator.
//!
//! Generates Cubic traces on a fixed path, trains the LSTM state-space
//! model, then replays a held-out trace's sending pattern through the
//! model (closed-loop, feeding predictions back) and compares the
//! predicted delay distribution with reality. Also demonstrates the
//! cross-traffic input of §5.2 and model serialization.
//!
//! ```sh
//! cargo run --release --example train_iboxml
//! ```

use ibox::iboxml::{IBoxMl, IBoxMlConfig};
use ibox_cc::Cubic;
use ibox_ml::TrainConfig;
use ibox_sim::{CrossTrafficCfg, PathConfig, PathEmulator, SimTime};
use ibox_trace::metrics::delay_percentile_ms;
use ibox_trace::FlowTrace;

fn measure(seed: u64, duration: SimTime) -> FlowTrace {
    let emu = PathEmulator::from_spec(
        ibox_sim::PathSpec::single(PathConfig::simple(6e6, SimTime::from_millis(25), 90_000)),
        duration,
    )
    .with_name("ml-demo")
    .with_cross_traffic(CrossTrafficCfg::cbr(
        1.5e6,
        SimTime::from_secs(3),
        SimTime::from_secs(9),
    ));
    emu.run_sender(Box::new(Cubic::new()), "m", seed)
        .traces
        .into_iter()
        .next()
        .expect("one recorded flow")
        .normalized()
}

fn main() {
    let duration = SimTime::from_secs(12);
    println!("collecting 4 training traces + 1 test trace…");
    let train: Vec<FlowTrace> = (0..4).map(|i| measure(100 + i, duration)).collect();
    let test = measure(999, duration);

    let cfg = IBoxMlConfig {
        hidden_sizes: vec![24, 24],
        with_cross_traffic: true,
        known_params: None,
        train: TrainConfig {
            epochs: 10,
            lr: 3e-3,
            tbptt: 64,
            clip: 5.0,
            loss_weight: 0.2,
            delay_weight: 1.0,
            ..Default::default()
        },
        seed: 5,
    };
    println!(
        "training iBoxML ({} params, cross-traffic feature ON)…",
        IBoxMl::fit(&train[..1], cfg.clone()).param_count()
    );
    let model = IBoxMl::fit(&train, cfg);

    println!("\nreplaying the held-out trace's sending pattern through the model…");
    let predicted = model.predict_trace(&test);
    println!("  metric        real      iboxml");
    for q in [0.5, 0.95] {
        println!(
            "  p{:<4} delay   {:>6.1}ms  {:>6.1}ms",
            (q * 100.0) as u32,
            delay_percentile_ms(&test, q).unwrap(),
            delay_percentile_ms(&predicted, q).unwrap(),
        );
    }
    println!(
        "  loss          {:>6.2}%  {:>6.2}%",
        test.loss_rate() * 100.0,
        predicted.loss_rate() * 100.0
    );

    let json = model.to_json();
    let restored = IBoxMl::from_json(&json).expect("roundtrip");
    assert_eq!(model.predict_delays(&test), restored.predict_delays(&test));
    println!("\nmodel serializes to {} KB of JSON and restores exactly", json.len() / 1024);
}
