//! Instance-level counterfactual analysis (§2's "instance test").
//!
//! Three runs of the same network differ only in *when* a competing Cubic
//! flow shows up (0–10 s, 20–30 s, 40–50 s). From a single Cubic
//! measurement per instance, iBoxNet recovers the cross-traffic timing
//! well enough that Vegas runs on the fitted models cluster perfectly with
//! the matching ground-truth instances — the paper's Fig. 4.
//!
//! ```sh
//! cargo run --release --example counterfactual
//! ```

use ibox::abtest::instance_test;
use ibox::IBoxNet;
use ibox_testbed::instance::{run_instance, InstanceScenario};

fn main() {
    // Peek at what iBoxNet recovers per instance.
    println!("what iBoxNet recovers from one cubic run per instance:");
    for pattern in 0..3 {
        let scenario = InstanceScenario::new(pattern);
        let trace = run_instance(&scenario, "cubic", 7 + pattern as u64);
        let model = IBoxNet::fit(&trace);
        let (ct_start, ct_stop) = scenario.cross_schedule();
        let window = (ct_start.as_secs_f64(), ct_stop.as_secs_f64());
        let inside = model.cross.bytes_between(window.0, window.1);
        let outside = model.cross.total_bytes() - inside;
        println!(
            "  pattern {pattern} (true CT in {:>2.0}-{:>2.0}s): estimated CT inside window {:>7.0} B, outside {:>7.0} B",
            window.0, window.1, inside, outside
        );
    }

    println!("\nrunning the full instance test (4 GT + 4 simulated vegas runs per pattern)…");
    let report = instance_test(4, "vegas", 11);

    println!(
        "k-means (k=3) purity: {:.3}  (1.000 = 'no mistakes', as in the paper)",
        report.purity
    );
    println!("\nper-run cluster assignments:");
    for (tag, a) in report.tags.iter().zip(&report.assignments) {
        println!(
            "  pattern {}  {:<8}  -> cluster {a}",
            tag.pattern,
            if tag.simulated { "iboxnet" } else { "gt" }
        );
    }
    println!("\ncontrol-protocol rate alignment (Fig. 4a):");
    for (p, c) in report.control_rate_alignment.iter().enumerate() {
        println!("  pattern {p}: xcorr(iBoxNet cubic, real cubic) = {c:.3}");
    }
}
