//! Ensemble A/B testing inside the simulator (§2's "ensemble test").
//!
//! Recreates a flighting-style A/B comparison without touching a network:
//! fit iBoxNet models on a fleet of Cubic measurement runs over randomized
//! cellular paths, then ask the models how Vegas *would have* performed on
//! those same paths — and verify against paired ground truth with KS
//! tests. This is a miniature of the paper's Fig. 2.
//!
//! ```sh
//! cargo run --release --example ab_testing
//! ```

use ibox::abtest::{ensemble_test, ModelKind};
use ibox_sim::SimTime;
use ibox_testbed::pantheon::generate_paired_datasets;
use ibox_testbed::Profile;

fn main() {
    let n = 8;
    let duration = SimTime::from_secs(15);

    println!("generating {n} paired cubic/vegas measurement runs (india-cellular profile)…");
    let ds =
        generate_paired_datasets(Profile::IndiaCellular, &["cubic", "vegas"], n, duration, 777);

    println!("fitting one iBoxNet per cubic run; replaying cubic and vegas through each…\n");
    let report = ensemble_test(&ds[0], &ds[1], ModelKind::IBoxNet, duration, 3);

    println!("per-run p95 delay (ms):");
    println!("  run   cubic/gt  cubic/sim  vegas/gt  vegas/sim");
    for i in 0..n {
        println!(
            "  {:>3}   {:>8.1}  {:>9.1}  {:>8.1}  {:>9.1}",
            i,
            report.gt_a[i].p95_delay_ms,
            report.sim_a[i].p95_delay_ms,
            report.gt_b[i].p95_delay_ms,
            report.sim_b[i].p95_delay_ms
        );
    }

    println!("\ntwo-sample KS tests (GT vs model):");
    for (name, ks) in [
        ("p95 delay", &report.ks_delay),
        ("loss %", &report.ks_loss),
        ("avg rate", &report.ks_rate),
    ] {
        println!(
            "  {name:<10} cubic: D={:.3} p={:.3}   vegas: D={:.3} p={:.3}",
            ks.a.statistic, ks.a.p_value, ks.b.statistic, ks.b.p_value
        );
    }
    println!("\n(p > 0.05 ⇒ the model's metric distribution is statistically");
    println!(" indistinguishable from ground truth — including for Vegas,");
    println!(" which the models never saw during fitting.)");
}
